"""Lowering from the loop-nest AST to PTX-like IR.

Reproduces the structure of Orio's CUDA code generation: the ``parallel``
loop becomes a grid-stride loop over ``blockIdx.x * blockDim.x +
threadIdx.x``; sequential loops become compare-and-branch loops; small
``If`` bodies are if-converted to predicated instructions (as ptxas does),
large ones become real divergent branches.

The lowering simultaneously builds the :class:`~repro.codegen.regions.Region`
tree used for dynamic-count evaluation and tags every memory access with the
coalescing pattern inferred from the symbolic stride of its index expression
with respect to the parallel loop variable.

Instruction-selection details that matter to the instruction mix:

- ``a*b + c`` fuses to ``mad``/``fma``;
- multiplication by a power-of-two integer constant becomes ``shl``;
- ``exp``/``div``/``sqrt`` lower to short SFU sequences under
  ``-use_fast_math`` and to longer refinement sequences otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codegen.ast_nodes import (
    ArrayParam,
    Assign,
    AtomicAdd,
    BinOp,
    BoolOp,
    Call,
    Cast,
    Cmp,
    Expr,
    FloatConst,
    For,
    If,
    IntConst,
    KernelSpec,
    Load,
    NotOp,
    Stmt,
    Store,
    Sync,
    UnaryOp,
    VarRef,
)
from repro.codegen.regions import MemAccess, Region, RegionKind
from repro.ptx.instruction import (
    Imm,
    Instruction,
    Label,
    LabelRef,
    MemRef,
    ParamRef,
    Reg,
    SReg,
)
from repro.ptx.isa import CmpOp, DType, MemSpace, Opcode, SRegKind
from repro.ptx.module import KernelIR, KernelParam

#: ln(2)^-1, used by exp() lowering.
_LOG2E = 1.4426950408889634

#: if-conversion threshold: bodies of at most this many instructions are
#: predicated rather than branched (mirrors ptxas behaviour).
PREDICATION_LIMIT = 8

_CMP_MAP = {
    "lt": CmpOp.LT, "le": CmpOp.LE, "gt": CmpOp.GT,
    "ge": CmpOp.GE, "eq": CmpOp.EQ, "ne": CmpOp.NE,
}


class LoweringError(ValueError):
    """Raised when a kernel spec cannot be lowered."""


@dataclass
class LoweredKernel:
    """Output of lowering, before register allocation."""

    ir: KernelIR
    root_region: Region
    parallel_extent: Expr | None
    """Total iterations of the parallel loop (None for single-thread code)."""


class _Ctx:
    """Mutable lowering state."""

    def __init__(self, spec: KernelSpec, fast_math: bool, address_64bit: bool):
        self.spec = spec
        self.fast_math = fast_math
        self.address_64bit = address_64bit
        self.body: list = []
        self.env: dict[str, Reg] = {}
        self.param_bases: dict[str, Reg] = {}
        self.smem_offsets: dict[str, tuple[int, DType]] = {}
        self._vreg = 0
        self._label = 0
        self.region_stack: list[Region] = []
        self.pvar: str | None = None
        self.pred_stack: list[tuple[Reg, bool]] = []
        self.seq_stack: list[str] = []
        """Innermost-last stack of enclosing sequential loop variables."""
        self.defs: dict[str, Expr | None] = {}
        """Symbolic definitions of locals (fully substituted), used to see
        through assignments like ``i = n % N`` when classifying access
        patterns.  ``None`` marks self-referential / unknown values."""

    def resolve_index(self, index: Expr) -> Expr:
        """Substitute known local definitions into an index expression."""
        from repro.codegen.ast_nodes import substitute

        known = {k: v for k, v in self.defs.items() if v is not None}
        return substitute(index, known) if known else index

    # -- emission helpers ------------------------------------------------

    @property
    def region(self) -> Region:
        return self.region_stack[-1]

    def fresh(self, dtype: DType) -> Reg:
        self._vreg += 1
        return Reg(f"%v{self._vreg}", dtype)

    def label(self, hint: str) -> str:
        self._label += 1
        return f"$L_{hint}_{self._label}"

    def emit(self, ins: Instruction, access: MemAccess | None = None) -> None:
        if self.pred_stack and ins.pred is None and not ins.is_terminator:
            pred, neg = self.pred_stack[-1]
            ins = ins.with_pred(pred, neg)
        self.body.append(ins)
        self.region.add_instruction(ins.category, ins.register_operand_count())
        if access is not None:
            self.region.mem_accesses.append(access)

    def emit_label(self, name: str) -> None:
        self.body.append(Label(name))

    # -- region management -------------------------------------------------

    def push_region(self, region: Region) -> None:
        self.region.children.append(region)
        self.region_stack.append(region)

    def pop_region(self) -> None:
        self.region_stack.pop()


# ----------------------------------------------------------------------
# stride analysis for coalescing patterns
# ----------------------------------------------------------------------


def index_stride(e: Expr, var: str):
    """Symbolic d(e)/d(var) for integer index expressions.

    Returns a (possibly fractional) coefficient when ``e`` is affine-ish in
    ``var``, or ``None`` when non-linear.  Division/modulo by constants are
    handled approximately: ``(a*var + b) // C`` has average stride ``a/C``
    (the value changes by ``a`` every ``C/a`` steps), and ``(...) % C``
    keeps its numerator's local stride.  This matches how these expressions
    appear in flattened multi-dimensional indexing (``n // N``, ``n % N``).
    """
    if isinstance(e, VarRef):
        return 1 if e.name == var else 0
    if isinstance(e, (IntConst, FloatConst)):
        return 0
    if isinstance(e, Cast):
        return index_stride(e.operand, var)
    if isinstance(e, BinOp):
        lv = index_stride(e.left, var)
        r = index_stride(e.right, var)
        if lv is None or r is None:
            return None
        if e.op == "+":
            return lv + r
        if e.op == "-":
            return lv - r
        if e.op == "*":
            if lv == 0 and isinstance(e.left, IntConst):
                return e.left.value * r
            if r == 0 and isinstance(e.right, IntConst):
                return lv * e.right.value
            if lv == 0 and r == 0:
                return 0
            return None
        if e.op in ("//", "/"):
            if r == 0 and isinstance(e.right, IntConst) and e.right.value:
                return lv / e.right.value
            if r == 0:
                # division by a lane-uniform parameter: the quotient changes
                # once every C lanes; domain sizes are >= warp-width in our
                # kernels, so treat it as effectively uniform
                return lv / 64.0 if lv is not None else None
            return 0 if (lv == 0 and r == 0) else None
        if e.op == "%":
            if r == 0:
                return lv  # locally contiguous, wraps every C elements
            return 0 if (lv == 0 and r == 0) else None
        if e.op in ("min", "max"):
            return 0 if (lv == 0 and r == 0) else None
    if isinstance(e, UnaryOp):
        s = index_stride(e.operand, var)
        if s is None:
            return None
        return -s if e.op == "-" else (0 if s == 0 else None)
    if isinstance(e, (Load, Call, Cmp, BoolOp, NotOp)):
        return None
    return None


def _pattern_from_stride(s) -> tuple[str, int]:
    if s is None:
        return "strided", 32
    if abs(s) < 0.5:
        # changes less than once per lane across a warp: effectively uniform
        return "uniform", 0
    if abs(s) < 1.5:
        return "coalesced", 1
    return "strided", int(round(abs(s)))


def classify_access(index: Expr, pvar: str | None,
                    seq_var: str | None = None) -> tuple[str, int, int]:
    """Infer (pattern, stride, seq_stride) of one access.

    The grid-stride mapping places consecutive parallel-loop iterations on
    consecutive threads, so a stride of 1 with respect to the parallel loop
    variable means adjacent lanes touch adjacent elements (coalesced).
    ``seq_stride`` is the per-iteration element stride of the innermost
    enclosing sequential loop (0 when there is none or the index does not
    depend on it).
    """
    if pvar is None:
        pattern, stride = "uniform", 0
    else:
        pattern, stride = _pattern_from_stride(index_stride(index, pvar))
    seq_stride = 0
    if seq_var is not None:
        ss = index_stride(index, seq_var)
        if ss is not None:
            seq_stride = int(round(ss)) if abs(ss) >= 0.5 else 0
        else:
            seq_stride = 32  # unknown: assume no line reuse
    return pattern, stride, seq_stride


# ----------------------------------------------------------------------
# expression lowering
# ----------------------------------------------------------------------


_ARITH_OPS = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
              "min": Opcode.MIN, "max": Opcode.MAX}


def _is_pow2(v: int) -> bool:
    return v > 0 and (v & (v - 1)) == 0


def lower_expr(ctx: _Ctx, e: Expr, want: DType | None = None):
    """Lower ``e``; returns a Reg or Imm operand."""
    if isinstance(e, IntConst):
        return Imm(e.value, e.dtype)
    if isinstance(e, FloatConst):
        return Imm(e.value, e.dtype)
    if isinstance(e, VarRef):
        if e.name in ctx.env:
            return ctx.env[e.name]
        raise LoweringError(f"unbound variable {e.name!r}")
    if isinstance(e, Cast):
        src = lower_expr(ctx, e.operand)
        if isinstance(src, Imm):
            val = float(src.value) if e.to.is_float else int(src.value)
            return Imm(val, e.to)
        if src.dtype == e.to:
            return src
        dst = ctx.fresh(e.to)
        ctx.emit(Instruction(Opcode.CVT, dtype=e.to, dst=dst, srcs=(src,),
                             src_dtype=src.dtype))
        return dst
    if isinstance(e, BinOp):
        return _lower_binop(ctx, e)
    if isinstance(e, UnaryOp):
        src = lower_expr(ctx, e.operand)
        op = Opcode.ABS if e.op == "abs" else Opcode.NEG
        dst = ctx.fresh(e.dtype)
        ctx.emit(Instruction(op, dtype=e.dtype, dst=dst, srcs=(src,)))
        return dst
    if isinstance(e, Call):
        return _lower_call(ctx, e)
    if isinstance(e, Load):
        return _lower_load(ctx, e)
    if isinstance(e, Cmp):
        return _lower_cmp(ctx, e)
    if isinstance(e, BoolOp):
        lv = lower_expr(ctx, e.left)
        r = lower_expr(ctx, e.right)
        dst = ctx.fresh(DType.PRED)
        op = Opcode.AND if e.op == "and" else Opcode.OR
        ctx.emit(Instruction(op, dtype=DType.PRED, dst=dst, srcs=(lv, r)))
        return dst
    if isinstance(e, NotOp):
        src = lower_expr(ctx, e.operand)
        dst = ctx.fresh(DType.PRED)
        ctx.emit(Instruction(Opcode.NOT, dtype=DType.PRED, dst=dst, srcs=(src,)))
        return dst
    raise LoweringError(f"cannot lower expression {e!r}")


def _coerce(ctx: _Ctx, operand, dtype: DType):
    """Insert a conversion so ``operand`` has type ``dtype``."""
    cur = operand.dtype
    if cur == dtype:
        return operand
    if isinstance(operand, Imm):
        val = float(operand.value) if dtype.is_float else int(operand.value)
        return Imm(val, dtype)
    dst = ctx.fresh(dtype)
    ctx.emit(Instruction(Opcode.CVT, dtype=dtype, dst=dst, srcs=(operand,),
                         src_dtype=cur))
    return dst


def _lower_binop(ctx: _Ctx, e: BinOp):
    dtype = e.dtype

    # fuse a*b + c  /  c + a*b into mad/fma
    if e.op == "+":
        for mul_side, other_side in ((e.left, e.right), (e.right, e.left)):
            if isinstance(mul_side, BinOp) and mul_side.op == "*":
                a = _coerce(ctx, lower_expr(ctx, mul_side.left), dtype)
                b = _coerce(ctx, lower_expr(ctx, mul_side.right), dtype)
                c = _coerce(ctx, lower_expr(ctx, other_side), dtype)
                dst = ctx.fresh(dtype)
                op = Opcode.FMA if dtype.is_float else Opcode.MAD
                ctx.emit(Instruction(op, dtype=dtype, dst=dst, srcs=(a, b, c)))
                return dst

    # integer multiply by power of two -> shift
    if e.op == "*" and not dtype.is_float:
        for const_side, var_side in ((e.right, e.left), (e.left, e.right)):
            if isinstance(const_side, IntConst) and _is_pow2(const_side.value):
                src = _coerce(ctx, lower_expr(ctx, var_side), dtype)
                dst = ctx.fresh(dtype)
                sh = Imm(int(math.log2(const_side.value)), DType.S32)
                ctx.emit(Instruction(Opcode.SHL, dtype=dtype, dst=dst,
                                     srcs=(src, sh)))
                return dst

    if e.op == "/":
        return _lower_div(ctx, e)
    if e.op == "//":
        lv = _coerce(ctx, lower_expr(ctx, e.left), dtype)
        r = _coerce(ctx, lower_expr(ctx, e.right), dtype)
        dst = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.DIV, dtype=dtype, dst=dst, srcs=(lv, r)))
        return dst
    if e.op == "%":
        lv = _coerce(ctx, lower_expr(ctx, e.left), dtype)
        r = _coerce(ctx, lower_expr(ctx, e.right), dtype)
        q = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.DIV, dtype=dtype, dst=q, srcs=(lv, r)))
        t = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.MUL, dtype=dtype, dst=t, srcs=(q, r)))
        dst = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.SUB, dtype=dtype, dst=dst, srcs=(lv, t)))
        return dst

    op = _ARITH_OPS[e.op]
    lv = _coerce(ctx, lower_expr(ctx, e.left), dtype)
    r = _coerce(ctx, lower_expr(ctx, e.right), dtype)
    dst = ctx.fresh(dtype)
    ctx.emit(Instruction(op, dtype=dtype, dst=dst, srcs=(lv, r)))
    return dst


def _lower_div(ctx: _Ctx, e: BinOp):
    dtype = e.dtype
    lv = _coerce(ctx, lower_expr(ctx, e.left), dtype)
    r = _coerce(ctx, lower_expr(ctx, e.right), dtype)
    if not dtype.is_float:
        dst = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.DIV, dtype=dtype, dst=dst, srcs=(lv, r)))
        return dst
    if ctx.fast_math:
        # a/b -> a * rcp(b)
        rcp = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.RCP, dtype=dtype, dst=rcp, srcs=(r,)))
        dst = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.MUL, dtype=dtype, dst=dst, srcs=(lv, rcp)))
        return dst
    # precise: reciprocal + two Newton refinement steps + final fixup
    rcp = ctx.fresh(dtype)
    ctx.emit(Instruction(Opcode.RCP, dtype=dtype, dst=rcp, srcs=(r,)))
    one = Imm(1.0, dtype)
    err = ctx.fresh(dtype)
    neg = ctx.fresh(dtype)
    ctx.emit(Instruction(Opcode.NEG, dtype=dtype, dst=neg, srcs=(r,)))
    ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=err, srcs=(neg, rcp, one)))
    rcp2 = ctx.fresh(dtype)
    ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=rcp2, srcs=(rcp, err, rcp)))
    q = ctx.fresh(dtype)
    ctx.emit(Instruction(Opcode.MUL, dtype=dtype, dst=q, srcs=(lv, rcp2)))
    rem = ctx.fresh(dtype)
    negq = ctx.fresh(dtype)
    ctx.emit(Instruction(Opcode.NEG, dtype=dtype, dst=negq, srcs=(q,)))
    ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=rem, srcs=(negq, r, lv)))
    dst = ctx.fresh(dtype)
    ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=dst, srcs=(rem, rcp2, q)))
    return dst


def _lower_call(ctx: _Ctx, e: Call):
    dtype = e.dtype
    x = _coerce(ctx, lower_expr(ctx, e.args[0]), dtype)

    def sfu(op: Opcode, src) -> Reg:
        dst = ctx.fresh(dtype)
        ctx.emit(Instruction(op, dtype=dtype, dst=dst, srcs=(src,)))
        return dst

    if e.fn == "rcp":
        return sfu(Opcode.RCP, x)
    if e.fn == "rsqrt":
        return sfu(Opcode.RSQRT, x)
    if e.fn == "sin":
        return sfu(Opcode.SIN, x)
    if e.fn == "cos":
        return sfu(Opcode.COS, x)
    if e.fn == "sqrt":
        if ctx.fast_math:
            return sfu(Opcode.SQRT, x)
        r = sfu(Opcode.RSQRT, x)
        y = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.MUL, dtype=dtype, dst=y, srcs=(x, r)))
        # one Heron refinement: y' = 0.5*(y + x/y) via fma forms
        half = Imm(0.5, dtype)
        t = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=t,
                             srcs=(y, half, Imm(0.0, dtype))))
        t2 = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=t2,
                             srcs=(x, r, y)))
        out = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.MUL, dtype=dtype, dst=out, srcs=(t2, half)))
        return out
    if e.fn == "exp":
        scaled = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.MUL, dtype=dtype, dst=scaled,
                             srcs=(x, Imm(_LOG2E, dtype))))
        if ctx.fast_math:
            return sfu(Opcode.EX2, scaled)
        raw = sfu(Opcode.EX2, scaled)
        # polynomial correction (models the precise expf software sequence)
        c1 = Imm(1.0, dtype)
        c0 = Imm(0.0, dtype)
        t1 = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=t1, srcs=(raw, c1, c0)))
        t2 = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=t2, srcs=(t1, c1, c0)))
        out = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=out, srcs=(t2, c1, c0)))
        return out
    if e.fn == "log":
        lg = sfu(Opcode.LG2, x)
        out = ctx.fresh(dtype)
        ln2 = Imm(1.0 / _LOG2E, dtype)
        ctx.emit(Instruction(Opcode.MUL, dtype=dtype, dst=out, srcs=(lg, ln2)))
        if ctx.fast_math:
            return out
        ref = ctx.fresh(dtype)
        ctx.emit(Instruction(Opcode.FMA, dtype=dtype, dst=ref,
                             srcs=(out, Imm(1.0, dtype), Imm(0.0, dtype))))
        return ref
    raise LoweringError(f"unknown intrinsic {e.fn}")


def _lower_cmp(ctx: _Ctx, e: Cmp):
    # operate in the joint type of the comparands
    lt, rt = e.left.dtype, e.right.dtype
    if lt.is_float or rt.is_float:
        work = DType.F64 if DType.F64 in (lt, rt) else DType.F32
    else:
        work = DType.S64 if DType.S64 in (lt, rt) else DType.S32
    lv = _coerce(ctx, lower_expr(ctx, e.left), work)
    r = _coerce(ctx, lower_expr(ctx, e.right), work)
    dst = ctx.fresh(DType.PRED)
    ctx.emit(Instruction(Opcode.SETP, dtype=work, dst=dst, srcs=(lv, r),
                         cmp=_CMP_MAP[e.op]))
    return dst


# -- memory ----------------------------------------------------------------


def _address(ctx: _Ctx, array: str, index: Expr, elem: DType) -> MemRef:
    """Compute the byte address of ``array[index]`` into a pointer register."""
    if array in ctx.smem_offsets:
        base_off, _ = ctx.smem_offsets[array]
        idx = _coerce(ctx, lower_expr(ctx, index), DType.S32)
        off = ctx.fresh(DType.S32)
        sh = Imm(int(math.log2(elem.nbytes)), DType.S32)
        ctx.emit(Instruction(Opcode.SHL, dtype=DType.S32, dst=off,
                             srcs=(idx, sh)))
        addr = ctx.fresh(DType.S32)
        ctx.emit(Instruction(Opcode.ADD, dtype=DType.S32, dst=addr,
                             srcs=(off, Imm(base_off, DType.S32))))
        return MemRef(MemSpace.SHARED, addr, 0)

    base = ctx.param_bases[array]
    idx = _coerce(ctx, lower_expr(ctx, index), DType.S32)
    if ctx.address_64bit:
        # nvcc idiom: one mul.wide.s32 produces the 64-bit byte offset
        off64 = ctx.fresh(DType.S64)
        ctx.emit(Instruction(Opcode.MULWIDE, dtype=DType.S64, dst=off64,
                             srcs=(idx, Imm(elem.nbytes, DType.S32)),
                             src_dtype=DType.S32))
        addr = ctx.fresh(DType.S64)
        ctx.emit(Instruction(Opcode.ADD, dtype=DType.S64, dst=addr,
                             srcs=(base, off64)))
    else:
        off32 = ctx.fresh(DType.S32)
        sh = Imm(int(math.log2(elem.nbytes)), DType.S32)
        ctx.emit(Instruction(Opcode.SHL, dtype=DType.S32, dst=off32,
                             srcs=(idx, sh)))
        addr = ctx.fresh(DType.S32)
        ctx.emit(Instruction(Opcode.ADD, dtype=DType.S32, dst=addr,
                             srcs=(base, off32)))
    return MemRef(MemSpace.GLOBAL, addr, 0)


def _lower_load(ctx: _Ctx, e: Load):
    mem = _address(ctx, e.array, e.index, e.elem_dtype)
    seq_var = ctx.seq_stack[-1] if ctx.seq_stack else None
    pattern, stride, seq_stride = classify_access(
        ctx.resolve_index(e.index), ctx.pvar, seq_var)
    dst = ctx.fresh(e.elem_dtype)
    ctx.emit(
        Instruction(Opcode.LD, dtype=e.elem_dtype, dst=dst, srcs=(mem,),
                    space=mem.space),
        access=MemAccess(mem.space, e.elem_dtype, pattern, stride, False,
                         seq_stride),
    )
    return dst


# ----------------------------------------------------------------------
# statement lowering
# ----------------------------------------------------------------------


def _lower_stmt(ctx: _Ctx, s: Stmt) -> None:
    if isinstance(s, Assign):
        # record the symbolic definition for access-pattern analysis
        from repro.codegen.ast_nodes import walk_exprs

        uses_self_or_unknown = any(
            isinstance(node, VarRef)
            and (node.name == s.var or ctx.defs.get(node.name, "") is None)
            for node in walk_exprs(s.expr)
        )
        has_load = any(isinstance(node, Load) for node in walk_exprs(s.expr))
        if uses_self_or_unknown or has_load:
            ctx.defs[s.var] = None
        else:
            ctx.defs[s.var] = ctx.resolve_index(s.expr)
        val = lower_expr(ctx, s.expr)
        dtype = val.dtype if not isinstance(val, Imm) else s.expr.dtype
        if s.var in ctx.env:
            home = ctx.env[s.var]
            if home.dtype != dtype:
                val = _coerce(ctx, val, home.dtype)
            ctx.emit(Instruction(Opcode.MOV, dtype=home.dtype, dst=home,
                                 srcs=(val,)))
        else:
            home = ctx.fresh(dtype)
            ctx.env[s.var] = home
            ctx.emit(Instruction(Opcode.MOV, dtype=dtype, dst=home, srcs=(val,)))
        return

    if isinstance(s, Store):
        elem = _store_dtype(ctx, s.array)
        val = _coerce(ctx, lower_expr(ctx, s.value), elem)
        mem = _address(ctx, s.array, s.index, elem)
        seq_var = ctx.seq_stack[-1] if ctx.seq_stack else None
        pattern, stride, seq_stride = classify_access(
            ctx.resolve_index(s.index), ctx.pvar, seq_var)
        ctx.emit(
            Instruction(Opcode.ST, dtype=elem, srcs=(mem, val),
                        space=mem.space),
            access=MemAccess(mem.space, elem, pattern, stride, True,
                             seq_stride),
        )
        return

    if isinstance(s, AtomicAdd):
        elem = _store_dtype(ctx, s.array)
        val = _coerce(ctx, lower_expr(ctx, s.value), elem)
        mem = _address(ctx, s.array, s.index, elem)
        seq_var = ctx.seq_stack[-1] if ctx.seq_stack else None
        pattern, stride, seq_stride = classify_access(
            ctx.resolve_index(s.index), ctx.pvar, seq_var)
        ctx.emit(
            Instruction(Opcode.RED, dtype=elem, srcs=(mem, val),
                        space=mem.space),
            access=MemAccess(mem.space, elem, pattern, stride, True,
                             seq_stride, is_atomic=True),
        )
        return

    if isinstance(s, For):
        _lower_for(ctx, s)
        return

    if isinstance(s, If):
        _lower_if(ctx, s)
        return

    if isinstance(s, Sync):
        ctx.emit(Instruction(Opcode.BAR))
        return

    raise LoweringError(f"cannot lower statement {s!r}")


def _store_dtype(ctx: _Ctx, array: str) -> DType:
    if array in ctx.smem_offsets:
        return ctx.smem_offsets[array][1]
    for p in ctx.spec.params:
        if isinstance(p, ArrayParam) and p.name == array:
            return p.elem_dtype
    raise LoweringError(f"store to unknown array {array!r}")


def _lower_for(ctx: _Ctx, s: For) -> None:
    if s.parallel:
        _lower_parallel_for(ctx, s)
    else:
        _lower_sequential_for(ctx, s)


def _lower_parallel_for(ctx: _Ctx, s: For) -> None:
    if ctx.pvar is not None:
        raise LoweringError("nested parallel loops are not supported")
    if ctx.pred_stack:
        raise LoweringError("parallel loop under predication is not supported")

    # preamble: global thread id and grid stride
    tid = ctx.fresh(DType.S32)
    ctx.emit(Instruction(Opcode.MOV, dtype=DType.S32, dst=tid,
                         srcs=(SReg(SRegKind.TID_X),)))
    ntid = ctx.fresh(DType.S32)
    ctx.emit(Instruction(Opcode.MOV, dtype=DType.S32, dst=ntid,
                         srcs=(SReg(SRegKind.NTID_X),)))
    ctaid = ctx.fresh(DType.S32)
    ctx.emit(Instruction(Opcode.MOV, dtype=DType.S32, dst=ctaid,
                         srcs=(SReg(SRegKind.CTAID_X),)))
    gtid = ctx.fresh(DType.S32)
    ctx.emit(Instruction(Opcode.MAD, dtype=DType.S32, dst=gtid,
                         srcs=(ctaid, ntid, tid)))
    nctaid = ctx.fresh(DType.S32)
    ctx.emit(Instruction(Opcode.MOV, dtype=DType.S32, dst=nctaid,
                         srcs=(SReg(SRegKind.NCTAID_X),)))
    stride = ctx.fresh(DType.S32)
    ctx.emit(Instruction(Opcode.MUL, dtype=DType.S32, dst=stride,
                         srcs=(ntid, nctaid)))

    upper = _coerce(ctx, lower_expr(ctx, s.upper), DType.S32)
    lower = lower_expr(ctx, s.lower)

    iv = ctx.fresh(DType.S32)
    ctx.env[s.var] = iv
    ctx.defs.pop(s.var, None)
    if isinstance(lower, Imm) and lower.value == 0:
        ctx.emit(Instruction(Opcode.MOV, dtype=DType.S32, dst=iv, srcs=(gtid,)))
    else:
        lo = _coerce(ctx, lower, DType.S32)
        ctx.emit(Instruction(Opcode.ADD, dtype=DType.S32, dst=iv,
                             srcs=(gtid, lo)))

    exit_lbl = ctx.label("pexit")
    loop_lbl = ctx.label("ploop")
    guard = ctx.fresh(DType.PRED)
    ctx.emit(Instruction(Opcode.SETP, dtype=DType.S32, dst=guard,
                         srcs=(iv, upper), cmp=CmpOp.GE))
    ctx.emit(Instruction(Opcode.BRA, srcs=(LabelRef(exit_lbl),),
                         pred=guard))
    ctx.emit_label(loop_lbl)

    region = Region(id=s.loop_id, kind=RegionKind.PLOOP, loop_var=s.var,
                    lower=s.lower, upper=s.upper, step=s.step)
    ctx.push_region(region)
    ctx.pvar = s.var
    for stmt in s.body:
        _lower_stmt(ctx, stmt)
    # latch
    ctx.emit(Instruction(Opcode.ADD, dtype=DType.S32, dst=iv,
                         srcs=(iv, stride)))
    back = ctx.fresh(DType.PRED)
    ctx.emit(Instruction(Opcode.SETP, dtype=DType.S32, dst=back,
                         srcs=(iv, upper), cmp=CmpOp.LT))
    ctx.emit(Instruction(Opcode.BRA, srcs=(LabelRef(loop_lbl),), pred=back))
    ctx.pvar = None
    ctx.pop_region()
    ctx.emit_label(exit_lbl)


def _lower_sequential_for(ctx: _Ctx, s: For) -> None:
    if ctx.pred_stack:
        raise LoweringError("loops under predication are not supported")
    upper = _coerce(ctx, lower_expr(ctx, s.upper), DType.S32)
    lower = _coerce(ctx, lower_expr(ctx, s.lower), DType.S32)

    iv = ctx.fresh(DType.S32)
    # a loop variable may shadow an earlier binding only if it is the same
    # loop var reused sequentially; we simply rebind.
    ctx.env[s.var] = iv
    ctx.defs.pop(s.var, None)
    ctx.emit(Instruction(Opcode.MOV, dtype=DType.S32, dst=iv, srcs=(lower,)))

    exit_lbl = ctx.label("sexit")
    loop_lbl = ctx.label("sloop")
    guard = ctx.fresh(DType.PRED)
    ctx.emit(Instruction(Opcode.SETP, dtype=DType.S32, dst=guard,
                         srcs=(iv, upper), cmp=CmpOp.GE))
    ctx.emit(Instruction(Opcode.BRA, srcs=(LabelRef(exit_lbl),), pred=guard))
    ctx.emit_label(loop_lbl)

    region = Region(id=s.loop_id, kind=RegionKind.SLOOP, loop_var=s.var,
                    lower=s.lower, upper=s.upper, step=s.step)
    ctx.push_region(region)
    ctx.seq_stack.append(s.var)
    for stmt in s.body:
        _lower_stmt(ctx, stmt)
    ctx.seq_stack.pop()
    ctx.emit(Instruction(Opcode.ADD, dtype=DType.S32, dst=iv,
                         srcs=(iv, Imm(s.step, DType.S32))))
    back = ctx.fresh(DType.PRED)
    ctx.emit(Instruction(Opcode.SETP, dtype=DType.S32, dst=back,
                         srcs=(iv, upper), cmp=CmpOp.LT))
    ctx.emit(Instruction(Opcode.BRA, srcs=(LabelRef(loop_lbl),), pred=back))
    ctx.pop_region()
    ctx.emit_label(exit_lbl)


def _stmt_weight(body) -> int:
    """Rough instruction-count estimate used by the if-conversion policy."""
    from repro.codegen.ast_nodes import walk_stmts, stmt_exprs, walk_exprs

    n = 0
    for st in walk_stmts(body):
        if isinstance(st, (For,)):
            return 10_000  # loops force a real branch
        for e in stmt_exprs(st):
            n += sum(1 for _ in walk_exprs(e))
        n += 2
    return n


def _lower_if(ctx: _Ctx, s: If) -> None:
    pred = lower_expr(ctx, s.cond)
    if not isinstance(pred, Reg) or pred.dtype is not DType.PRED:
        raise LoweringError("If condition must lower to a predicate")

    weight = _stmt_weight(s.then_body) + _stmt_weight(s.else_body)
    if weight <= PREDICATION_LIMIT and not ctx.pred_stack:
        # if-conversion: both arms predicated, no divergence possible
        ctx.pred_stack.append((pred, False))
        for stmt in s.then_body:
            _lower_stmt(ctx, stmt)
        ctx.pred_stack.pop()
        if s.else_body:
            ctx.pred_stack.append((pred, True))
            for stmt in s.else_body:
                _lower_stmt(ctx, stmt)
            ctx.pred_stack.pop()
        return

    end_lbl = ctx.label("endif")
    else_lbl = ctx.label("else") if s.else_body else end_lbl
    ctx.emit(Instruction(Opcode.BRA, srcs=(LabelRef(else_lbl),),
                         pred=pred, pred_negated=True))

    then_region = Region(id=f"if{id(s) & 0xFFFF}t", kind=RegionKind.THEN,
                         cond=s.cond, prob_hint=s.prob)
    ctx.push_region(then_region)
    for stmt in s.then_body:
        _lower_stmt(ctx, stmt)
    if s.else_body:
        ctx.emit(Instruction(Opcode.BRA, srcs=(LabelRef(end_lbl),)))
    ctx.pop_region()

    if s.else_body:
        ctx.emit_label(else_lbl)
        else_region = Region(id=f"if{id(s) & 0xFFFF}e", kind=RegionKind.ELSE,
                             cond=s.cond, prob_hint=s.prob)
        ctx.push_region(else_region)
        for stmt in s.else_body:
            _lower_stmt(ctx, stmt)
        ctx.pop_region()
    ctx.emit_label(end_lbl)


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------


def lower_kernel(
    spec: KernelSpec,
    fast_math: bool = False,
    address_64bit: bool = True,
) -> LoweredKernel:
    """Lower a kernel spec to IR with virtual registers.

    The returned :class:`LoweredKernel` still uses virtual register names
    (``%vN``); :mod:`repro.codegen.regalloc` assigns physical registers and
    the per-thread register count.
    """
    ctx = _Ctx(spec, fast_math=fast_math, address_64bit=address_64bit)
    root = Region(id="root", kind=RegionKind.ROOT)
    ctx.region_stack.append(root)

    # shared-memory layout
    offset = 0
    for name, count, dtype in spec.smem_arrays:
        ctx.smem_offsets[name] = (offset, dtype)
        offset += count * dtype.nbytes
        offset = -(-offset // 8) * 8  # 8-byte align

    # parameter loads: pointers into %v registers, scalars likewise
    ptr_dtype = DType.S64 if address_64bit else DType.S32
    for p in spec.params:
        if isinstance(p, ArrayParam):
            base = ctx.fresh(ptr_dtype)
            ctx.emit(Instruction(Opcode.LD, dtype=ptr_dtype, dst=base,
                                 srcs=(ParamRef(p.name),),
                                 space=MemSpace.PARAM))
            ctx.param_bases[p.name] = base
        else:
            reg = ctx.fresh(p.dtype)
            ctx.emit(Instruction(Opcode.LD, dtype=p.dtype, dst=reg,
                                 srcs=(ParamRef(p.name),),
                                 space=MemSpace.PARAM))
            ctx.env[p.name] = reg

    for stmt in spec.body:
        _lower_stmt(ctx, stmt)
    ctx.emit(Instruction(Opcode.EXIT))

    params = tuple(
        KernelParam(p.name, p.elem_dtype if isinstance(p, ArrayParam)
                    else p.dtype, isinstance(p, ArrayParam))
        for p in spec.params
    )
    smem = sum(c * d.nbytes for _, c, d in spec.smem_arrays)
    ir = KernelIR(name=spec.name, params=params, body=ctx.body,
                  static_smem_bytes=smem)

    ploops = [s for s in spec.body if isinstance(s, For) and s.parallel]
    extent = None
    if ploops:
        extent = BinOp("-", ploops[0].upper, ploops[0].lower)
    return LoweredKernel(ir=ir, root_region=root, parallel_extent=extent)
