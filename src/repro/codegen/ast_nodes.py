"""Loop-nest AST: the kernel input language.

This is the Orio-style source form: a kernel is a list of statements over
scalar/array parameters, where the outermost ``For`` marked ``parallel=True``
is mapped to CUDA threads by the lowering (grid-stride), and inner ``For``
loops stay sequential per-thread (and are the targets of unrolling).

Design constraints (checked by :func:`KernelSpec.validate`):

- loop bounds and ``If`` conditions may reference parameters, constants and
  enclosing loop variables;
- loop variables are 32-bit integers with unit stride (``step`` may be set
  by transforms such as unrolling);
- arrays are 1-D buffers indexed by affine-ish integer expressions (use
  explicit flattening like ``i*N + j`` for matrices, as CUDA C does).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterable

from repro.ptx.isa import DType

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Expr:
    """Base class for expressions.  Operator overloads build trees."""

    dtype: DType

    def _wrap(self, other) -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, bool):
            raise TypeError("bool constants are not kernel expressions")
        if isinstance(other, int):
            return IntConst(other)
        if isinstance(other, float):
            ft = self.dtype if self.dtype.is_float else DType.F32
            return FloatConst(other, ft)
        raise TypeError(f"cannot coerce {other!r} to an expression")

    def __add__(self, other):
        return BinOp("+", self, self._wrap(other))

    def __radd__(self, other):
        return BinOp("+", self._wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, self._wrap(other))

    def __rsub__(self, other):
        return BinOp("-", self._wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, self._wrap(other))

    def __rmul__(self, other):
        return BinOp("*", self._wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, self._wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", self._wrap(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, self._wrap(other))

    def __mod__(self, other):
        return BinOp("%", self, self._wrap(other))

    def __neg__(self):
        return UnaryOp("-", self)

    # comparisons build Cmp nodes (not booleans)
    def lt(self, other):
        return Cmp("lt", self, self._wrap(other))

    def le(self, other):
        return Cmp("le", self, self._wrap(other))

    def gt(self, other):
        return Cmp("gt", self, self._wrap(other))

    def ge(self, other):
        return Cmp("ge", self, self._wrap(other))

    def eq(self, other):
        return Cmp("eq", self, self._wrap(other))

    def ne(self, other):
        return Cmp("ne", self, self._wrap(other))


@dataclass(frozen=True)
class IntConst(Expr):
    value: int
    dtype: DType = DType.S32

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class FloatConst(Expr):
    value: float
    dtype: DType = DType.F32

    def __str__(self):
        return repr(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to a scalar parameter, a loop variable, or a local."""

    name: str
    dtype: DType = DType.S32

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * / // % min max
    left: Expr
    right: Expr

    _VALID = frozenset({"+", "-", "*", "/", "//", "%", "min", "max"})

    def __post_init__(self):
        if self.op not in self._VALID:
            raise ValueError(f"unknown binary op {self.op!r}")

    @property
    def dtype(self) -> DType:
        lt, rt = self.left.dtype, self.right.dtype
        if lt.is_float or rt.is_float:
            return DType.F64 if DType.F64 in (lt, rt) else DType.F32
        return DType.S64 if DType.S64 in (lt, rt) else DType.S32

    def __str__(self):
        if self.op in ("min", "max"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # - abs
    operand: Expr

    @property
    def dtype(self) -> DType:
        return self.operand.dtype

    def __str__(self):
        if self.op == "abs":
            return f"abs({self.operand})"
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    """Math intrinsic call: exp, sqrt, rsqrt, sin, cos, log, rcp."""

    fn: str
    args: tuple

    _VALID = frozenset({"exp", "sqrt", "rsqrt", "sin", "cos", "log", "rcp"})

    def __post_init__(self):
        if self.fn not in self._VALID:
            raise ValueError(f"unknown intrinsic {self.fn!r}")
        if len(self.args) != 1:
            raise ValueError(f"{self.fn} takes exactly one argument")

    @property
    def dtype(self) -> DType:
        t = self.args[0].dtype
        return t if t.is_float else DType.F32

    def __str__(self):
        return f"{self.fn}({self.args[0]})"


@dataclass(frozen=True)
class Cast(Expr):
    to: DType
    operand: Expr

    @property
    def dtype(self) -> DType:
        return self.to

    def __str__(self):
        return f"({self.to.value}){self.operand}"


@dataclass(frozen=True)
class Load(Expr):
    """Element load ``array[index]``."""

    array: str
    index: Expr
    elem_dtype: DType = DType.F32

    @property
    def dtype(self) -> DType:
        return self.elem_dtype

    def __str__(self):
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class Cmp(Expr):
    op: str  # lt le gt ge eq ne
    left: Expr
    right: Expr
    dtype: DType = DType.PRED

    def __str__(self):
        sym = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
               "eq": "==", "ne": "!="}[self.op]
        return f"({self.left} {sym} {self.right})"


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # and / or
    left: Expr
    right: Expr
    dtype: DType = DType.PRED

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr
    dtype: DType = DType.PRED

    def __str__(self):
        return f"(!{self.operand})"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``var = expr`` -- declares the local on first assignment."""

    var: str
    expr: Expr

    def __str__(self):
        return f"{self.var} = {self.expr};"


@dataclass(frozen=True)
class Store(Stmt):
    """``array[index] = value``."""

    array: str
    index: Expr
    value: Expr

    def __str__(self):
        return f"{self.array}[{self.index}] = {self.value};"


@dataclass(frozen=True)
class AtomicAdd(Stmt):
    """``atomicAdd(&array[index], value)`` -- lowered to ``red.global.add``."""

    array: str
    index: Expr
    value: Expr

    def __str__(self):
        return f"atomicAdd(&{self.array}[{self.index}], {self.value});"


_loop_ids = itertools.count(1)


@dataclass(frozen=True)
class For(Stmt):
    """``for (var = lower; var < upper; var += step) body``.

    ``parallel=True`` marks the loop the lowering maps onto the CUDA grid
    (grid-stride).  ``loop_id`` identifies the loop in the trip-count model;
    transforms preserve provenance by deriving ids.
    """

    var: str
    lower: Expr
    upper: Expr
    body: tuple
    step: int = 1
    parallel: bool = False
    loop_id: str = ""

    def __post_init__(self):
        if self.step < 1:
            raise ValueError("loop step must be >= 1")
        if not self.loop_id:
            object.__setattr__(self, "loop_id", f"L{next(_loop_ids)}")
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    def __str__(self):
        tag = "parallel " if self.parallel else ""
        inner = "\n".join(f"  {line}" for s in self.body
                          for line in str(s).splitlines())
        hdr = (f"{tag}for ({self.var} = {self.lower}; {self.var} < "
               f"{self.upper}; {self.var} += {self.step})")
        return f"{hdr} {{\n{inner}\n}}"


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) then_body else else_body``.

    ``prob`` is an optional author-provided estimate of the probability that
    the condition holds for a random thread; the timing substrate uses it,
    the *static analyzer does not see it* (it assumes 0.5, which is one
    source of the Table VI static-estimation error).
    """

    cond: Expr
    then_body: tuple
    else_body: tuple = ()
    prob: float | None = None

    def __post_init__(self):
        if not isinstance(self.then_body, tuple):
            object.__setattr__(self, "then_body", tuple(self.then_body))
        if not isinstance(self.else_body, tuple):
            object.__setattr__(self, "else_body", tuple(self.else_body))
        if self.prob is not None and not (0.0 <= self.prob <= 1.0):
            raise ValueError("prob must be in [0, 1]")

    def __str__(self):
        t = "\n".join(f"  {line}" for s in self.then_body
                      for line in str(s).splitlines())
        out = f"if {self.cond} {{\n{t}\n}}"
        if self.else_body:
            e = "\n".join(f"  {line}" for s in self.else_body
                          for line in str(s).splitlines())
            out += f" else {{\n{e}\n}}"
        return out


@dataclass(frozen=True)
class Sync(Stmt):
    """``__syncthreads()``."""

    def __str__(self):
        return "__syncthreads();"


# ----------------------------------------------------------------------
# Kernel specification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarParam:
    name: str
    dtype: DType = DType.S32


@dataclass(frozen=True)
class ArrayParam:
    name: str
    elem_dtype: DType = DType.F32


@dataclass(frozen=True)
class KernelSpec:
    """A kernel source: parameters plus a statement list.

    ``smem_arrays`` maps ``__shared__`` array names to element counts (their
    dtype matches the producing stores); kernels without tiling leave it
    empty.
    """

    name: str
    params: tuple
    body: tuple
    smem_arrays: tuple = ()  # (name, elem_count, dtype) triples

    def __post_init__(self):
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", tuple(self.params))
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        if not isinstance(self.smem_arrays, tuple):
            object.__setattr__(self, "smem_arrays", tuple(self.smem_arrays))
        self.validate()

    def scalar_params(self) -> list[ScalarParam]:
        return [p for p in self.params if isinstance(p, ScalarParam)]

    def array_params(self) -> list[ArrayParam]:
        return [p for p in self.params if isinstance(p, ArrayParam)]

    def param(self, name: str):
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name}: no parameter {name!r}")

    def parallel_loops(self) -> list[For]:
        return [s for s in walk_stmts(self.body) if isinstance(s, For) and s.parallel]

    def validate(self) -> None:
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ValueError(f"kernel {self.name}: duplicate parameter names")
        ploops = self.parallel_loops()
        if len(ploops) > 1:
            raise ValueError(
                f"kernel {self.name}: at most one parallel loop is supported"
            )
        # parallel loop must be top-level
        if ploops and not any(
            isinstance(s, For) and s.parallel for s in self.body
        ):
            raise ValueError(
                f"kernel {self.name}: the parallel loop must be top-level"
            )

    def __str__(self):
        params = ", ".join(
            f"{p.elem_dtype.value}* {p.name}" if isinstance(p, ArrayParam)
            else f"{p.dtype.value} {p.name}"
            for p in self.params
        )
        body = "\n".join(f"  {line}" for s in self.body
                         for line in str(s).splitlines())
        return f"__global__ void {self.name}({params}) {{\n{body}\n}}"


# ----------------------------------------------------------------------
# Traversal and evaluation helpers
# ----------------------------------------------------------------------


def walk_stmts(body: Iterable[Stmt]):
    """Yield every statement in ``body``, depth-first."""
    for s in body:
        yield s
        if isinstance(s, For):
            yield from walk_stmts(s.body)
        elif isinstance(s, If):
            yield from walk_stmts(s.then_body)
            yield from walk_stmts(s.else_body)


def walk_exprs(e: Expr):
    """Yield every node of an expression tree, depth-first."""
    yield e
    if isinstance(e, (BinOp, Cmp, BoolOp)):
        yield from walk_exprs(e.left)
        yield from walk_exprs(e.right)
    elif isinstance(e, (UnaryOp, NotOp)):
        yield from walk_exprs(e.operand)
    elif isinstance(e, Cast):
        yield from walk_exprs(e.operand)
    elif isinstance(e, Call):
        for a in e.args:
            yield from walk_exprs(a)
    elif isinstance(e, Load):
        yield from walk_exprs(e.index)


def stmt_exprs(s: Stmt):
    """The expressions directly contained in one statement."""
    if isinstance(s, Assign):
        return [s.expr]
    if isinstance(s, (Store, AtomicAdd)):
        return [s.index, s.value]
    if isinstance(s, For):
        return [s.lower, s.upper]
    if isinstance(s, If):
        return [s.cond]
    return []


def substitute(e: Expr, env: dict[str, Expr]) -> Expr:
    """Replace ``VarRef`` nodes named in ``env``; used by loop unrolling."""
    if isinstance(e, VarRef) and e.name in env:
        return env[e.name]
    if isinstance(e, (BinOp, Cmp, BoolOp)):
        return replace(e, left=substitute(e.left, env),
                       right=substitute(e.right, env))
    if isinstance(e, (UnaryOp, NotOp)):
        return replace(e, operand=substitute(e.operand, env))
    if isinstance(e, Cast):
        return replace(e, operand=substitute(e.operand, env))
    if isinstance(e, Call):
        return replace(e, args=tuple(substitute(a, env) for a in e.args))
    if isinstance(e, Load):
        return replace(e, index=substitute(e.index, env))
    return e


def substitute_stmt(s: Stmt, env: dict[str, Expr]) -> Stmt:
    if isinstance(s, Assign):
        return replace(s, expr=substitute(s.expr, env))
    if isinstance(s, (Store, AtomicAdd)):
        return replace(s, index=substitute(s.index, env),
                       value=substitute(s.value, env))
    if isinstance(s, For):
        inner_env = {k: v for k, v in env.items() if k != s.var}
        return For(
            var=s.var,
            lower=substitute(s.lower, inner_env),
            upper=substitute(s.upper, inner_env),
            body=tuple(substitute_stmt(b, inner_env) for b in s.body),
            step=s.step,
            parallel=s.parallel,
            loop_id=f"{s.loop_id}'",
        )
    if isinstance(s, If):
        return If(
            cond=substitute(s.cond, env),
            then_body=tuple(substitute_stmt(b, env) for b in s.then_body),
            else_body=tuple(substitute_stmt(b, env) for b in s.else_body),
            prob=s.prob,
        )
    return s


def evaluate_expr(e: Expr, env: dict[str, float]) -> float:
    """Numerically evaluate an expression over scalar bindings.

    Used for trip-count formulas (loop bounds over parameters) -- not a
    kernel interpreter.  Integer ops follow C semantics (truncating ``/``
    on ints).
    """
    import math

    if isinstance(e, IntConst):
        return e.value
    if isinstance(e, FloatConst):
        return e.value
    if isinstance(e, VarRef):
        if e.name not in env:
            raise KeyError(f"unbound variable {e.name!r} in expression")
        return env[e.name]
    if isinstance(e, BinOp):
        lv = evaluate_expr(e.left, env)
        r = evaluate_expr(e.right, env)
        if e.op == "+":
            return lv + r
        if e.op == "-":
            return lv - r
        if e.op == "*":
            return lv * r
        if e.op == "/":
            if e.dtype.is_float:
                return lv / r
            return int(lv / r) if r != 0 else 0
        if e.op == "//":
            return int(lv) // int(r)
        if e.op == "%":
            return int(lv) % int(r)
        if e.op == "min":
            return min(lv, r)
        if e.op == "max":
            return max(lv, r)
    if isinstance(e, UnaryOp):
        v = evaluate_expr(e.operand, env)
        return abs(v) if e.op == "abs" else -v
    if isinstance(e, Cast):
        v = evaluate_expr(e.operand, env)
        return float(v) if e.to.is_float else int(v)
    if isinstance(e, Cmp):
        lv = evaluate_expr(e.left, env)
        r = evaluate_expr(e.right, env)
        return {
            "lt": lv < r, "le": lv <= r, "gt": lv > r,
            "ge": lv >= r, "eq": lv == r, "ne": lv != r,
        }[e.op]
    if isinstance(e, BoolOp):
        lv = evaluate_expr(e.left, env)
        r = evaluate_expr(e.right, env)
        return (lv and r) if e.op == "and" else (lv or r)
    if isinstance(e, NotOp):
        return not evaluate_expr(e.operand, env)
    if isinstance(e, Call):
        v = evaluate_expr(e.args[0], env)
        return {
            "exp": math.exp, "sqrt": math.sqrt, "sin": math.sin,
            "cos": math.cos, "log": math.log,
            "rsqrt": lambda x: 1.0 / math.sqrt(x),
            "rcp": lambda x: 1.0 / x,
        }[e.fn](v)
    if isinstance(e, Load):
        # input-aware evaluation: the caller may bind whole input arrays
        # in ``env`` (the counting model does, for data-dependent bounds
        # like CSR row extents); absent arrays raise like unbound scalars
        if e.array not in env:
            raise KeyError(f"unbound array {e.array!r} in expression")
        v = env[e.array][int(evaluate_expr(e.index, env))]
        return float(v) if e.dtype.is_float else int(v)
    raise TypeError(f"cannot evaluate {type(e).__name__} numerically")


def evaluate_expr_numpy(e: Expr, env: dict):
    """Vectorized evaluation over NumPy-array variable bindings.

    Used by the exact dynamic-count substrate to evaluate branch conditions
    over whole iteration domains at once (e.g. the boundary predicate of the
    ex14FJ stencil over all N^3 points).  Integer division/modulo follow C
    semantics for non-negative operands, which is all our index expressions
    use.
    """
    import numpy as np

    if isinstance(e, IntConst):
        return np.int64(e.value)
    if isinstance(e, FloatConst):
        return np.float64(e.value)
    if isinstance(e, VarRef):
        if e.name not in env:
            raise KeyError(f"unbound variable {e.name!r} in expression")
        return env[e.name]
    if isinstance(e, BinOp):
        lv = evaluate_expr_numpy(e.left, env)
        r = evaluate_expr_numpy(e.right, env)
        if e.op == "+":
            return lv + r
        if e.op == "-":
            return lv - r
        if e.op == "*":
            return lv * r
        if e.op == "/":
            if e.dtype.is_float:
                return lv / r
            return np.asarray(lv) // np.asarray(r)
        if e.op == "//":
            return np.asarray(lv) // np.asarray(r)
        if e.op == "%":
            return np.asarray(lv) % np.asarray(r)
        if e.op == "min":
            return np.minimum(lv, r)
        if e.op == "max":
            return np.maximum(lv, r)
    if isinstance(e, UnaryOp):
        v = evaluate_expr_numpy(e.operand, env)
        return np.abs(v) if e.op == "abs" else -v
    if isinstance(e, Cast):
        v = evaluate_expr_numpy(e.operand, env)
        return v.astype(float) if e.to.is_float else np.asarray(v).astype(np.int64)
    if isinstance(e, Cmp):
        lv = evaluate_expr_numpy(e.left, env)
        r = evaluate_expr_numpy(e.right, env)
        return {
            "lt": lv < r, "le": lv <= r, "gt": lv > r,
            "ge": lv >= r, "eq": lv == r, "ne": lv != r,
        }[e.op]
    if isinstance(e, BoolOp):
        lv = evaluate_expr_numpy(e.left, env)
        r = evaluate_expr_numpy(e.right, env)
        return (lv & r) if e.op == "and" else (lv | r)
    if isinstance(e, NotOp):
        return ~evaluate_expr_numpy(e.operand, env)
    if isinstance(e, Call):
        import numpy as np

        v = evaluate_expr_numpy(e.args[0], env)
        return {
            "exp": np.exp, "sqrt": np.sqrt, "sin": np.sin,
            "cos": np.cos, "log": np.log,
            "rsqrt": lambda x: 1.0 / np.sqrt(x),
            "rcp": lambda x: 1.0 / x,
        }[e.fn](v)
    if isinstance(e, Load):
        # vectorized gather from a bound input array (data-dependent
        # branch conditions / loop bounds over concrete inputs)
        if e.array not in env:
            raise KeyError(f"unbound array {e.array!r} in expression")
        arr = np.asarray(env[e.array])
        idx = np.asarray(evaluate_expr_numpy(e.index, env)).astype(np.int64)
        return arr[idx]
    raise TypeError(f"cannot evaluate {type(e).__name__} with numpy")
