"""Region tree: the bridge between static code and dynamic behaviour.

Lowering annotates every emitted instruction with the *region* it belongs
to: the kernel preamble (ROOT), the grid-stride parallel loop (PLOOP),
sequential loops (SLOOP), or branch arms (THEN/ELSE).  A region records the
Table II category counts of its direct instructions, register-operand
traffic, and the memory accesses it performs.

Execution counts then follow from region semantics:

- ROOT executes once per launched thread (``TC * BC``);
- a PLOOP's body executes exactly once per loop iteration across the whole
  grid (grid-stride mapping), i.e. ``upper - lower`` times in total;
- a SLOOP's body executes ``trips`` times per entry of its parent;
- branch arms execute a *fraction* of their parent's count -- exact when the
  caller can evaluate the condition over the iteration domain
  (:mod:`repro.sim.counting`), or the analyzer's 0.5 assumption for the
  paper's static estimate.

This split is precisely the paper's static/dynamic distinction: the static
analyzer sees the same region tree but must guess multiplicities, which is
where the Table VI estimation error comes from.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.arch.throughput import InstrCategory, PipeClass
from repro.codegen.ast_nodes import Expr, evaluate_expr
from repro.ptx.isa import DType, MemSpace


class RegionKind(enum.Enum):
    ROOT = "root"
    PLOOP = "parallel-loop"
    SLOOP = "sequential-loop"
    THEN = "then"
    ELSE = "else"


@dataclass(frozen=True)
class MemAccess:
    """One static memory instruction with its access pattern.

    ``pattern`` is one of ``"coalesced"`` (adjacent threads touch adjacent
    elements), ``"uniform"`` (all threads of a warp touch the same element),
    or ``"strided"`` (thread-dependent with element stride ``stride``).

    ``seq_stride`` is the element stride with respect to the innermost
    enclosing *sequential* loop variable: 1 means consecutive iterations of
    one thread walk consecutive elements, so a fetched cache line serves
    several iterations *if it survives in cache* -- the occupancy-dependent
    cache-thrash effect the timing model charges for.
    """

    space: MemSpace
    dtype: DType
    pattern: str
    stride: int
    is_store: bool
    seq_stride: int = 0
    is_atomic: bool = False

    def transactions_per_warp(self, warp_size: int = 32,
                              line_bytes: int = 128) -> int:
        """Memory transactions one warp needs for this access."""
        if self.space is MemSpace.SHARED:
            return 1  # banked; conflicts modelled separately
        elem = self.dtype.nbytes
        if self.pattern == "uniform":
            return 1
        if self.pattern == "coalesced":
            return max(1, (warp_size * elem) // line_bytes)
        # strided: each lane in its own segment once stride*elem >= line
        span = min(self.stride * elem, line_bytes)
        lanes_per_line = max(1, line_bytes // max(span, 1))
        return max(1, -(-warp_size // lanes_per_line))


@dataclass
class Region:
    """A node of the region tree."""

    id: str
    kind: RegionKind
    counts: Counter = field(default_factory=Counter)
    reg_ops: int = 0
    mem_accesses: list = field(default_factory=list)
    children: list = field(default_factory=list)
    # loop metadata (PLOOP / SLOOP)
    loop_var: str | None = None
    lower: Expr | None = None
    upper: Expr | None = None
    step: int = 1
    # branch metadata (THEN / ELSE)
    cond: Expr | None = None
    prob_hint: float | None = None

    def add_instruction(self, category: InstrCategory, reg_ops: int) -> None:
        self.counts[category] += 1
        self.reg_ops += reg_ops

    def iterations(self, env: dict[str, float]) -> int:
        """Total iterations of a loop region given parameter bindings."""
        if self.kind not in (RegionKind.PLOOP, RegionKind.SLOOP):
            raise ValueError(f"region {self.id} is not a loop")
        lo = int(evaluate_expr(self.lower, env))
        hi = int(evaluate_expr(self.upper, env))
        if hi <= lo:
            return 0
        return -(-(hi - lo) // self.step)

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()

    def static_totals(self) -> tuple[Counter, int]:
        """Plain static sums over the subtree (the raw disassembly view)."""
        counts: Counter = Counter()
        regs = 0
        for r in self.walk():
            counts.update(r.counts)
            regs += r.reg_ops
        return counts, regs


@dataclass(frozen=True)
class DynamicCounts:
    """Evaluated dynamic instruction counts for one launch.

    ``by_category`` maps Table II categories to execution counts;
    ``reg_ops`` is total register-operand traffic (the paper's ``Regs``
    metric / O_reg); ``mem_traffic`` is a list of ``(MemAccess, thread
    executions)`` pairs from which transaction/byte totals derive;
    ``mem_transactions`` and ``dram_bytes`` are the pattern-weighted totals
    assuming no cache effects (the timing model refines them with its
    occupancy-dependent cache model).
    """

    by_category: dict
    reg_ops: float
    mem_transactions: float
    dram_bytes: float
    total_threads: int
    mem_traffic: tuple = ()

    def by_pipe(self) -> dict[PipeClass, float]:
        """Aggregate to the paper's four classes: O_fl, O_mem, O_ctrl, O_reg.

        ``REG`` is register-operand traffic, which is tracked separately
        from instruction counts.
        """
        agg = {p: 0.0 for p in PipeClass}
        for cat, n in self.by_category.items():
            agg[cat.pipe] += n
        agg[PipeClass.REG] += self.reg_ops
        return agg

    @property
    def total_instructions(self) -> float:
        return float(sum(self.by_category.values()))


BranchFractionFn = Callable[[Region, dict, list], float]

DATA_DEP_TRIPS_DEFAULT = 8.0
"""Assumed mean trip count for sequential loops whose bounds cannot be
evaluated from the environment at all -- data-dependent trips (e.g. CSR
row extents) with the input arrays absent, which is exactly the static
analyzer's blind spot.  Callers that *can* see the inputs (the exact
counting substrate) bind the arrays in ``env`` and never hit this."""


def _sloop_trips(region: Region, env: dict, loop_stack: list) -> float:
    """Mean trips per entry of a sequential loop, best effort.

    Three tiers: exact scalar evaluation when the bounds only reference
    parameters (every regular corpus kernel); a vectorized mean over the
    enclosing loop domain when the bounds reference enclosing loop
    variables or input arrays bound in ``env`` (triangular loops, CSR row
    extents); and :data:`DATA_DEP_TRIPS_DEFAULT` when the data the bounds
    need is absent -- the static analyzer's documented assumption for
    data-dependent loops.
    """
    try:
        return float(region.iterations(env))
    except (KeyError, TypeError):
        pass
    try:
        import numpy as np

        from repro.codegen.ast_nodes import evaluate_expr_numpy

        axes = []
        for r in loop_stack:
            lo = int(evaluate_expr(r.lower, env))
            hi = int(evaluate_expr(r.upper, env))
            axes.append(np.arange(lo, hi, r.step, dtype=np.int64))
        if not axes or any(a.size == 0 for a in axes):
            return DATA_DEP_TRIPS_DEFAULT
        grids = np.meshgrid(*axes, indexing="ij", sparse=True)
        bind = dict(env)
        for r, g in zip(loop_stack, grids):
            bind[r.loop_var] = g
        lo = np.asarray(evaluate_expr_numpy(region.lower, bind), np.float64)
        hi = np.asarray(evaluate_expr_numpy(region.upper, bind), np.float64)
        trips = np.ceil(np.maximum(hi - lo, 0.0) / region.step)
        shape = tuple(a.size for a in axes)
        return float(np.broadcast_to(trips, shape).mean())
    except (KeyError, TypeError):
        return DATA_DEP_TRIPS_DEFAULT


def _half(region: Region, env: dict, loop_stack: list) -> float:
    """The static analyzer's branch assumption: both arms equally likely.

    The callback receives THEN *and* ELSE regions and must return the
    execution multiplier for that specific arm (this matters for warp-level
    accounting, where both arms can have multiplier ~1 under divergence).
    """
    return 0.5


def evaluate_region_tree(
    root: Region,
    env: dict[str, float],
    total_threads: int,
    branch_fraction: BranchFractionFn = _half,
    warp_size: int = 32,
) -> DynamicCounts:
    """Compute dynamic counts for the tree under parameter bindings ``env``.

    ``branch_fraction(region, env, loop_stack)`` returns the probability
    that a THEN region's condition holds, given the stack of enclosing loop
    regions (outermost first); ELSE regions automatically receive the
    complement.  Pass an exact evaluator for ground-truth counts or keep the
    default 0.5 for the paper's static estimate.
    """
    if root.kind is not RegionKind.ROOT:
        raise ValueError("evaluate_region_tree expects the ROOT region")
    by_cat: Counter = Counter()
    reg_ops = 0.0
    transactions = 0.0
    dram_bytes = 0.0
    traffic: list = []

    def visit(region: Region, count: float, loops: list) -> None:
        nonlocal reg_ops, transactions, dram_bytes
        for cat, n in region.counts.items():
            by_cat[cat] += n * count
        reg_ops += region.reg_ops * count
        warps = count / warp_size
        for acc in region.mem_accesses:
            traffic.append((acc, count))
            tx = acc.transactions_per_warp(warp_size)
            transactions += tx * warps
            if acc.space is MemSpace.GLOBAL:
                dram_bytes += tx * 32.0 * warps  # 32B DRAM segments

        for child in region.children:
            if child.kind is RegionKind.PLOOP:
                child_count = float(child.iterations(env))
                visit(child, child_count, loops + [child])
            elif child.kind is RegionKind.SLOOP:
                child_count = count * _sloop_trips(child, env, loops)
                visit(child, child_count, loops + [child])
            elif child.kind in (RegionKind.THEN, RegionKind.ELSE):
                frac = branch_fraction(child, env, loops)
                visit(child, count * frac, loops)
            else:
                raise ValueError(f"unexpected child region kind {child.kind}")

    visit(root, float(total_threads), [])
    return DynamicCounts(
        by_category=dict(by_cat),
        reg_ops=reg_ops,
        mem_transactions=transactions,
        dram_bytes=dram_bytes,
        total_threads=total_threads,
        mem_traffic=tuple(traffic),
    )
