"""Linear-scan register allocation.

Maps the virtual registers produced by lowering onto physical register
classes (``%r`` s32/u32, ``%f`` f32, ``%rd`` s64, ``%fd`` f64, ``%p``
predicates) and computes the per-thread register count that the occupancy
model consumes -- the number ``ptxas -v`` would report.

Modelling notes:

- live intervals are extended across loop back edges, so loop-carried
  values (accumulators, loop counters) hold their register for the whole
  loop, as real allocators must;
- 64-bit values occupy two 32-bit slots (register pairs);
- predicates live in their own bank and do not count toward the slot total
  (as on real hardware, which has a small separate predicate file);
- each architecture reserves a few registers for the ABI/system use; the
  reservation differs per generation, which is one reason the paper's
  Table VII reports different ``R_u`` per architecture for the same kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ptx.instruction import Instruction, Label, Reg
from repro.ptx.isa import DType
from repro.ptx.module import KernelIR


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of register allocation for one kernel."""

    kernel: KernelIR
    regs_per_thread: int
    slots_by_class: dict
    spilled: int
    mapping: dict


_CLASS_PREFIX = {
    DType.S32: "%r",
    DType.U32: "%r",
    DType.F32: "%f",
    DType.S64: "%rd",
    DType.F64: "%fd",
    DType.PRED: "%p",
}

_SLOTS = {DType.S32: 1, DType.U32: 1, DType.F32: 1,
          DType.S64: 2, DType.F64: 2, DType.PRED: 0}


def _live_intervals(body: list) -> dict[str, tuple[int, int, DType]]:
    """[first_def, last_use] per virtual register, extended over loops."""
    first: dict[str, int] = {}
    last: dict[str, int] = {}
    dtype: dict[str, DType] = {}
    label_pos: dict[str, int] = {}
    instrs: list[tuple[int, Instruction]] = []

    pos = 0
    for item in body:
        if isinstance(item, Label):
            label_pos[item.name] = pos
        else:
            instrs.append((pos, item))
            pos += 1

    for p, ins in instrs:
        for r in ins.registers_written():
            first.setdefault(r.name, p)
            last[r.name] = max(last.get(r.name, p), p)
            dtype[r.name] = r.dtype
        for r in ins.registers_read():
            if r.name not in first:
                first[r.name] = p  # reads of undefined regs: verifier's job
            last[r.name] = max(last.get(r.name, p), p)
            dtype.setdefault(r.name, r.dtype)

    # loop extension: for every backward branch target..branch range, any
    # interval entering the loop live must survive to the loop end
    loops: list[tuple[int, int]] = []
    for p, ins in instrs:
        tgt = ins.branch_target
        if tgt is not None and tgt in label_pos and label_pos[tgt] <= p:
            loops.append((label_pos[tgt], p))
    changed = True
    while changed:
        changed = False
        for start, end in loops:
            for name in first:
                if first[name] < start and last[name] >= start and last[name] < end:
                    last[name] = end
                    changed = True

    return {n: (first[n], last[n], dtype[n]) for n in first}


class _Pool:
    """A free-list pool for one physical register class."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.free: list[int] = []
        self.high_water = 0

    def take(self) -> int:
        if self.free:
            return self.free.pop()
        self.high_water += 1
        return self.high_water

    def release(self, idx: int) -> None:
        self.free.append(idx)


def allocate_registers(
    ir: KernelIR,
    reserved: int = 2,
    max_regs: int = 255,
) -> AllocationResult:
    """Run linear scan over ``ir`` and return the renamed kernel.

    ``reserved`` models per-architecture ABI registers added to the reported
    count.  If the slot demand exceeds ``max_regs``, the excess is counted
    as ``spilled`` (the reported register count is clamped, mirroring
    ``ptxas --maxrregcount`` behaviour) -- the benchmark kernels never spill.
    """
    intervals = _live_intervals(ir.body)
    order = sorted(intervals.items(), key=lambda kv: (kv[1][0], kv[1][1]))

    pools: dict[str, _Pool] = {}
    active: list[tuple[int, str, str, int]] = []  # (end, vname, prefix, idx)
    mapping: dict[str, Reg] = {}

    for vname, (start, end, dt) in order:
        # expire finished intervals
        still = []
        for a_end, a_name, a_prefix, a_idx in active:
            if a_end < start:
                pools[a_prefix].release(a_idx)
            else:
                still.append((a_end, a_name, a_prefix, a_idx))
        active = still

        prefix = _CLASS_PREFIX[dt]
        pool = pools.setdefault(prefix, _Pool(prefix))
        idx = pool.take()
        mapping[vname] = Reg(f"{prefix}{idx}", dt)
        active.append((end, vname, prefix, idx))

    new_body = []
    for item in ir.body:
        if isinstance(item, Label):
            new_body.append(item)
        else:
            new_body.append(item.rename_registers(mapping))

    slots_by_class = {}
    slot_total = 0
    for prefix, pool in pools.items():
        per = 2 if prefix in ("%rd", "%fd") else (0 if prefix == "%p" else 1)
        slots_by_class[prefix] = pool.high_water
        slot_total += pool.high_water * per

    demanded = slot_total + reserved
    spilled = max(0, demanded - max_regs)
    regs_per_thread = min(demanded, max_regs)

    out = KernelIR(
        name=ir.name,
        params=ir.params,
        body=new_body,
        regs_per_thread=regs_per_thread,
        static_smem_bytes=ir.static_smem_bytes,
        target_sm=ir.target_sm,
        meta=dict(ir.meta),
    )
    return AllocationResult(
        kernel=out,
        regs_per_thread=regs_per_thread,
        slots_by_class=slots_by_class,
        spilled=spilled,
        mapping=mapping,
    )
