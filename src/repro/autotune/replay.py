"""Tuning session recording and replay (paper Sec. VII).

"We regard the methodology we have developed as a knowledge discovery
framework where the degree of empirical testing can be 'dialed in' during
the autotuning process ... By recording the decisions and code variants at
each step, it is also possible to replay tuning with empirical testing for
purpose of validation.  In this way, the framework can continually
evaluate the static models and refine their predictive power."

This module implements that loop:

- :class:`SessionRecorder` captures every decision of a tuning run -- the
  static analysis snapshot, the pruned space, every measured variant --
  into a JSON-serializable record;
- :func:`replay_with_empirical_testing` re-runs a recorded session's
  *pruned-away* region empirically and reports what the static model cost:
  the regret of pruning, and whether the analyzer's T* actually contained
  the global optimum;
- :class:`Dial` expresses the static-to-empirical spectrum: fraction 0.0
  trusts the static model completely (search only T*), 1.0 is fully
  empirical (exhaustive), intermediate values add the empirically most
  promising pruned thread counts back into the search.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field

from repro.arch.specs import GPUSpec
from repro.autotune.measure import Measurer
from repro.autotune.space import ParameterSpace
from repro.autotune.tuner import Autotuner
from repro.kernels.base import Benchmark


@dataclass
class RecordedVariant:
    config: dict
    size: int
    seconds: float


@dataclass
class SessionRecord:
    """A complete, replayable record of one tuning run."""

    benchmark: str
    gpu: str
    size: int
    space_names: list
    space_values: dict
    suggested_threads: list
    rule_threads: list
    intensity: float
    use_rule: bool
    searched_threads: list
    variants: list = field(default_factory=list)
    best_config: dict | None = None
    best_seconds: float | None = None
    wall_seconds: float = 0.0

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, default=str)

    @staticmethod
    def from_json(text: str) -> "SessionRecord":
        data = json.loads(text)
        data["variants"] = [RecordedVariant(**v) for v in data["variants"]]
        return SessionRecord(**data)


class SessionRecorder:
    """Runs a static-search tuning session and records every decision."""

    def __init__(self, benchmark: Benchmark, gpu: GPUSpec,
                 space: ParameterSpace | None = None):
        self.benchmark = benchmark
        self.gpu = gpu
        self.tuner = Autotuner(benchmark, gpu, space=space)

    def run(self, size: int, use_rule: bool = False) -> SessionRecord:
        t0 = time.time()
        out = self.tuner.tune(size=size, search="static", use_rule=use_rule)
        strategy_report = None
        # the StaticSearch instance stashes its analysis report
        space = self.tuner.space
        record = SessionRecord(
            benchmark=self.benchmark.name,
            gpu=self.gpu.name,
            size=size,
            space_names=space.names(),
            space_values={p.name: list(p.values) for p in space.parameters},
            suggested_threads=[],
            rule_threads=[],
            intensity=float("nan"),
            use_rule=use_rule,
            searched_threads=sorted(
                {m.config["TC"] for m in out.results.measurements}
            ),
            variants=[
                RecordedVariant(m.config, m.size, m.seconds)
                for m in out.results.measurements
            ],
            best_config=out.best_config,
            best_seconds=out.best_seconds,
            wall_seconds=time.time() - t0,
        )
        # recover the analysis snapshot for the record
        from repro.core.analyzer import StaticAnalyzer

        rep = StaticAnalyzer(self.gpu).analyze(
            list(self.benchmark.specs),
            self.benchmark.param_env(size),
            name=self.benchmark.name,
        )
        record.suggested_threads = list(rep.suggestion.threads)
        record.rule_threads = list(rep.rule_threads)
        record.intensity = rep.intensity
        return record


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of empirically validating a recorded session."""

    record_best: float
    pruned_best: float
    """Best time found in the region the static model pruned away."""

    global_best: float
    regret: float
    """(record_best - global_best) / global_best: what pruning cost."""

    t_star_contained_optimum: bool
    pruned_evaluations: int

    def summary(self) -> str:
        verdict = ("contained" if self.t_star_contained_optimum
                   else "MISSED")
        return (
            f"replay: static-pruned best {self.record_best * 1e6:.1f} us, "
            f"global best {self.global_best * 1e6:.1f} us "
            f"(regret {self.regret:+.2%}); T* {verdict} the optimum; "
            f"validating cost {self.pruned_evaluations} extra measurements"
        )


def replay_with_empirical_testing(
    record: SessionRecord,
    benchmark: Benchmark,
    gpu: GPUSpec,
) -> ReplayReport:
    """Measure the pruned-away region and evaluate the static decision."""
    measurer = Measurer(benchmark, gpu)
    searched = set(record.searched_threads)
    pruned_best = float("inf")
    pruned_evals = 0
    # rebuild the recorded space and walk the complement of the TC pruning
    from repro.autotune.space import Parameter

    space = ParameterSpace([
        Parameter(n, tuple(record.space_values[n]))
        for n in record.space_names
    ])
    for config in space:
        if config["TC"] in searched:
            continue
        m = measurer.measure(config, record.size)
        pruned_evals += 1
        if m.seconds < pruned_best:
            pruned_best = m.seconds

    record_best = float(record.best_seconds)
    global_best = min(record_best, pruned_best)
    return ReplayReport(
        record_best=record_best,
        pruned_best=pruned_best,
        global_best=global_best,
        regret=(record_best - global_best) / global_best,
        t_star_contained_optimum=record_best <= pruned_best,
        pruned_evaluations=pruned_evals,
    )


@dataclass(frozen=True)
class Dial:
    """The static <-> empirical spectrum (paper Sec. VII).

    ``empirical_fraction`` selects how much of the pruned thread axis is
    added back for empirical exploration: 0.0 = trust the static model
    (T* only), 1.0 = fully empirical (all thread counts).
    """

    empirical_fraction: float = 0.0

    def __post_init__(self):
        if not (0.0 <= self.empirical_fraction <= 1.0):
            raise ValueError("empirical_fraction must be in [0, 1]")

    def thread_counts(self, space: ParameterSpace, t_star) -> tuple:
        """The thread values to search at this dial setting."""
        all_tc = list(space.by_name["TC"].values)
        chosen = [t for t in all_tc if t in set(t_star)]
        pruned = [t for t in all_tc if t not in set(t_star)]
        extra = round(self.empirical_fraction * len(pruned))
        # add back pruned values nearest to the suggested ones first
        def dist(t):
            return min(abs(t - s) for s in t_star)

        chosen += sorted(pruned, key=dist)[:extra]
        return tuple(sorted(chosen))


def tune_with_dial(
    benchmark: Benchmark,
    gpu: GPUSpec,
    size: int,
    dial: Dial,
    space: ParameterSpace | None = None,
):
    """Tune with the requested degree of empirical testing.

    Returns the tuner outcome over the dialed space; at fraction 0 this is
    the paper's static search, at fraction 1 exhaustive search.
    """
    from repro.core.analyzer import StaticAnalyzer

    tuner = Autotuner(benchmark, gpu, space=space)
    rep = StaticAnalyzer(gpu).analyze(
        list(benchmark.specs), benchmark.param_env(size),
        name=benchmark.name,
    )
    threads = dial.thread_counts(tuner.space, rep.suggestion.threads)
    restricted = tuner.space.restrict("TC", threads)
    sub_tuner = Autotuner(benchmark, gpu, space=restricted,
                          model_params=tuner.model_params)
    return sub_tuner.tune(size=size, search="exhaustive")
