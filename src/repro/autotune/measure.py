"""Variant generation and measurement.

``Measurer`` turns a tuning configuration (one point of the Table III
space) into a compiled code variant -- recompiling only when compile-time
parameters (``UIF``, ``CFLAGS``, ``PL``) change -- and measures it on the
simulated GPU with the paper's protocol (ten repetitions, fifth trial).
Static metrics for the variant (occupancy, register usage, dynamic
register-instruction counts) are recorded alongside the time, which is
what the Table V statistics are built from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.arch.specs import GPUSpec
from repro.codegen.compiler import CompiledModule, CompileOptions, compile_module
from repro.kernels.base import Benchmark
from repro.sim.counting import exact_counts
from repro.sim.occupancy_hw import hw_occupancy
from repro.sim.timing import (
    DEFAULT_PARAMS,
    LaunchConfig,
    ModelParams,
    measure_benchmark,
)


def compile_config_key(config: dict) -> tuple:
    """The compile-time slice of a configuration (``UIF``, ``CFLAGS``,
    ``PL``): variants sharing it share one compiled module.  Used for the
    module cache here and for shard grouping in :mod:`repro.engine.work`."""
    return (
        int(config.get("UIF", 1)),
        str(config.get("CFLAGS", "")),
        int(config.get("PL", 16)),
    )


class MeasurementError(RuntimeError):
    """A batch measurement failed at a specific ``(config, size)`` point.

    Raised by :meth:`Measurer.measure_many` (the sweep-engine worker
    path) so a shard failure names the exact work point that caused it
    -- the engine's :class:`~repro.engine.resilience.ShardFailure`
    records carry this message verbatim.
    """

    def __init__(self, config: dict, size: int, cause: BaseException):
        super().__init__(
            f"measuring config {dict(config)} at size {size} failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.config = dict(config)
        self.size = size


@dataclass(frozen=True)
class VariantMeasurement:
    """One measured code variant."""

    config: dict
    size: int
    seconds: float
    occupancy: float
    regs_per_thread: int
    reg_instructions: float
    """Dynamic register-operand traffic (the Table V 'Register
    Instructions' statistic)."""

    @property
    def launchable(self) -> bool:
        return self.seconds != float("inf")


class Measurer:
    """Compiles and measures variants of one benchmark on one GPU."""

    def __init__(
        self,
        benchmark: Benchmark,
        gpu: GPUSpec,
        params: ModelParams = DEFAULT_PARAMS,
        repetitions: int = 10,
        trial_index: int = 4,
    ):
        self.benchmark = benchmark
        self.gpu = gpu
        self.params = params
        self.repetitions = repetitions
        self.trial_index = trial_index
        self._modules: dict[tuple, CompiledModule] = {}
        self.evaluations = 0

    def module_for(self, config: dict) -> CompiledModule:
        """The compiled module for a configuration (cached by the
        compile-time slice of the configuration)."""
        key = compile_config_key(config)
        mod = self._modules.get(key)
        if mod is None:
            options = CompileOptions(
                gpu=self.gpu,
                unroll_factor=key[0],
                fast_math="-use_fast_math" in key[1],
                l1_pref_kb=key[2],
            )
            mod = compile_module(
                self.benchmark.name, list(self.benchmark.specs), options
            )
            self._modules[key] = mod
            obs.add("measure.compiles", kernel=self.benchmark.name)
        return mod

    def measure(self, config: dict, size: int) -> VariantMeasurement:
        """Measure one variant at one input size."""
        self.evaluations += 1
        mod = self.module_for(config)
        env = self.benchmark.param_env(size)
        tc = int(config["TC"])
        bc = int(config["BC"])
        launch = LaunchConfig(tc, bc)

        seconds = measure_benchmark(
            mod, launch, env,
            repetitions=self.repetitions,
            trial_index=self.trial_index,
            params=self.params,
        )
        occ = hw_occupancy(
            self.gpu, tc, mod.regs_per_thread, mod.static_smem_bytes
        )
        reg_instr = sum(
            exact_counts(ck, env, tc, bc).reg_ops for ck in mod
        )
        return VariantMeasurement(
            config=dict(config),
            size=size,
            seconds=seconds,
            occupancy=occ,
            regs_per_thread=mod.regs_per_thread,
            reg_instructions=reg_instr,
        )

    def measure_many(self, items) -> list[VariantMeasurement]:
        """Measure a batch of ``(config, size)`` pairs, in input order.

        Modules are compiled once per distinct compile key regardless of
        order (``module_for`` memoizes them for the measurer's lifetime).
        This is the unit of work a sweep-engine worker runs on its
        shard, so a failure is wrapped in :class:`MeasurementError` to
        pin the exact point that caused it.
        """
        out = []
        for config, size in items:
            try:
                out.append(self.measure(config, size))
            except (KeyboardInterrupt, SystemExit, MeasurementError):
                raise
            except Exception as e:
                obs.add("measure.errors", kernel=self.benchmark.name)
                raise MeasurementError(config, size, e) from e
        return out

    def objective(self, size: int):
        """A callable ``config -> seconds`` for the search strategies."""

        def f(config: dict) -> float:
            return self.measure(config, size).seconds

        return f

    def batch_objective(self, size: int, results=None, engine=None):
        """A :class:`BatchObjective` at one input size (see below)."""
        return BatchObjective(self, size, results=results, engine=engine)


class BatchObjective:
    """The objective the tuner hands to the search strategies.

    Point calls (``obj(config)``) measure inline through the
    :class:`Measurer`.  Batch calls (``obj.batch(configs)``) -- what the
    ask/tell driver in :class:`~repro.autotune.search.base.Search` uses
    -- route the whole list through the sweep engine when one is
    configured (sharded across worker processes, served from the
    persistent cache) and fall back to :meth:`Measurer.measure_many`
    otherwise.  Every measurement lands in ``results`` in evaluation
    order either way, so batched runs are byte-identical to serial ones.
    """

    def __init__(self, measurer: Measurer, size: int, results=None,
                 engine=None):
        self.measurer = measurer
        self.size = size
        self.results = results
        self.engine = engine

    def _absorb(self, measurements) -> list[float]:
        if self.results is not None:
            for m in measurements:
                self.results.add(m)
        return [m.seconds for m in measurements]

    def __call__(self, config: dict) -> float:
        return self._absorb([self.measurer.measure(config, self.size)])[0]

    def batch(self, configs: list) -> list[float]:
        if not configs:
            return []
        m = self.measurer
        pairs = [(config, self.size) for config in configs]
        if self.engine is not None:
            measurements = self.engine.run(
                m.benchmark, m.gpu, pairs, params=m.params,
                repetitions=m.repetitions, trial_index=m.trial_index,
            )
            m.evaluations += len(measurements)
        else:
            measurements = m.measure_many(pairs)
        return self._absorb(measurements)
