"""Orio-like annotation-based autotuning framework.

Mirrors the workflow the paper integrates with (Sec. II-C, III-C, IV-A):

- :mod:`repro.autotune.spec` parses ``PerfTuning`` annotations in the
  Fig. 3 syntax into a :class:`~repro.autotune.space.ParameterSpace`;
- :mod:`repro.autotune.space` enumerates the Table III feature space
  (``TC x BC x UIF x PL x CFLAGS`` = 5,120 variants by default);
- :mod:`repro.autotune.measure` generates, compiles and "runs" each code
  variant on the simulated GPU with the paper's measurement protocol
  (ten repetitions, fifth trial);
- :mod:`repro.autotune.results` ranks variants and splits them at the
  50th percentile (Rank 1 = good performers / Rank 2 = poor performers);
- :mod:`repro.autotune.search` provides the search strategies the paper
  lists -- exhaustive, random, simulated annealing, genetic, Nelder-Mead
  simplex -- plus the paper's contribution: the **static search module**
  that prunes the thread axis with the analyzer's ``T*`` (and, optionally,
  the intensity rule) before searching;
- :mod:`repro.autotune.tuner` is the user-facing facade.
"""

from repro.autotune.spec import parse_perf_tuning, default_tuning_spec
from repro.autotune.space import ParameterSpace, Parameter
from repro.autotune.measure import Measurer, VariantMeasurement
from repro.autotune.results import TuningResults, RankedVariant, rank_split
from repro.autotune.search import (
    SearchResult,
    ExhaustiveSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
    GeneticSearch,
    NelderMeadSearch,
    StaticSearch,
    get_search,
    SEARCH_REGISTRY,
)
from repro.autotune.tuner import Autotuner

__all__ = [
    "parse_perf_tuning",
    "default_tuning_spec",
    "ParameterSpace",
    "Parameter",
    "Measurer",
    "VariantMeasurement",
    "TuningResults",
    "RankedVariant",
    "rank_split",
    "SearchResult",
    "ExhaustiveSearch",
    "RandomSearch",
    "SimulatedAnnealingSearch",
    "GeneticSearch",
    "NelderMeadSearch",
    "StaticSearch",
    "get_search",
    "SEARCH_REGISTRY",
    "Autotuner",
]
