"""Orio-like annotation-based autotuning framework.

Mirrors the workflow the paper integrates with (Sec. II-C, III-C, IV-A):

- :mod:`repro.autotune.spec` parses ``PerfTuning`` annotations in the
  Fig. 3 syntax into a :class:`~repro.autotune.space.ParameterSpace`;
- :mod:`repro.autotune.space` enumerates the Table III feature space
  (``TC x BC x UIF x PL x CFLAGS`` = 5,120 variants by default);
- :mod:`repro.autotune.measure` generates, compiles and "runs" each code
  variant on the simulated GPU with the paper's measurement protocol
  (ten repetitions, fifth trial);
- :mod:`repro.autotune.results` ranks variants and splits them at the
  50th percentile (Rank 1 = good performers / Rank 2 = poor performers);
- :mod:`repro.autotune.search` provides the search strategies the paper
  lists -- exhaustive, random, simulated annealing, genetic, Nelder-Mead
  simplex -- plus the paper's contribution: the **static search module**
  that prunes the thread axis with the analyzer's ``T*`` (and, optionally,
  the intensity rule) before searching;
- :mod:`repro.autotune.tuner` is the user-facing facade.
"""

import warnings

from repro.autotune.spec import parse_perf_tuning, default_tuning_spec
from repro.autotune.space import ParameterSpace, Parameter
from repro.autotune.measure import VariantMeasurement
from repro.autotune.measure import Measurer as _Measurer
from repro.autotune.results import TuningResults, RankedVariant, rank_split
from repro.autotune.search import (
    SearchResult,
    ExhaustiveSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
    GeneticSearch,
    NelderMeadSearch,
    StaticSearch,
    get_search,
    SEARCH_REGISTRY,
)
from repro.autotune.tuner import Autotuner as _Autotuner

_warned: set = set()


def _deprecate(name: str, replacement: str) -> None:
    """Warn once per process: `repro.api` is the public surface now."""
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"constructing repro.autotune.{name} directly is deprecated for "
        f"application code; use {replacement} (from repro.api) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class Autotuner(_Autotuner):
    """Deprecated alias of :class:`repro.autotune.tuner.Autotuner`:
    application code should go through :func:`repro.api.tune` (internal
    modules import the real class from ``repro.autotune.tuner``)."""

    def __init__(self, *args, **kwargs):
        _deprecate("Autotuner", "repro.api.tune()")
        super().__init__(*args, **kwargs)


class Measurer(_Measurer):
    """Deprecated alias of :class:`repro.autotune.measure.Measurer`;
    see :class:`Autotuner` above."""

    def __init__(self, *args, **kwargs):
        _deprecate("Measurer", "repro.api.tune()")
        super().__init__(*args, **kwargs)

__all__ = [
    "parse_perf_tuning",
    "default_tuning_spec",
    "ParameterSpace",
    "Parameter",
    "Measurer",
    "VariantMeasurement",
    "TuningResults",
    "RankedVariant",
    "rank_split",
    "SearchResult",
    "ExhaustiveSearch",
    "RandomSearch",
    "SimulatedAnnealingSearch",
    "GeneticSearch",
    "NelderMeadSearch",
    "StaticSearch",
    "get_search",
    "SEARCH_REGISTRY",
    "Autotuner",
]
