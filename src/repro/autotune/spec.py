"""Parser for Orio ``PerfTuning`` annotations (paper Fig. 3 syntax).

.. code-block:: c

    /*@ begin PerfTuning (
      def performance_params {
        param TC[]     = range(32,1025,32);
        param BC[]     = range(24,193,24);
        param UIF[]    = range(1,6);
        param PL[]     = [16,48];
        param CFLAGS[] = ['', '-use_fast_math'];
      }
      ...
    ) @*/

Only the ``performance_params`` block is interpreted; parameter values are
``range(a, b[, c])`` expressions or literal lists of integers / quoted
strings.
"""

from __future__ import annotations

import re

from repro.autotune.space import Parameter, ParameterSpace

_PARAM_RE = re.compile(
    r"param\s+(\w+)\s*\[\s*\]\s*=\s*([^;]+);", re.MULTILINE
)
_RANGE_RE = re.compile(
    r"^range\(\s*(-?\d+)\s*,\s*(-?\d+)\s*(?:,\s*(-?\d+)\s*)?\)$"
)


class SpecError(ValueError):
    """Raised on malformed tuning specifications."""


def _parse_values(text: str, name: str) -> tuple:
    text = text.strip()
    m = _RANGE_RE.match(text)
    if m:
        a, b = int(m.group(1)), int(m.group(2))
        c = int(m.group(3)) if m.group(3) else 1
        if c == 0:
            raise SpecError(f"{name}: zero range step")
        vals = tuple(range(a, b, c))
        if not vals:
            raise SpecError(f"{name}: empty range {text}")
        return vals
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            raise SpecError(f"{name}: empty value list")
        out = []
        for tok in _split_list(inner):
            tok = tok.strip()
            if (tok.startswith("'") and tok.endswith("'")) or (
                tok.startswith('"') and tok.endswith('"')
            ):
                out.append(tok[1:-1])
            else:
                try:
                    out.append(int(tok))
                except ValueError:
                    raise SpecError(
                        f"{name}: cannot parse list element {tok!r}"
                    ) from None
        return tuple(out)
    raise SpecError(f"{name}: cannot parse values {text!r}")


def _split_list(inner: str) -> list[str]:
    """Split on commas, honouring quotes."""
    out, cur, quote = [], [], None
    for ch in inner:
        if quote:
            cur.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            cur.append(ch)
        elif ch == ",":
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur))
    return out


def parse_perf_tuning(text: str) -> ParameterSpace:
    """Parse a PerfTuning annotation into a :class:`ParameterSpace`."""
    if "performance_params" not in text:
        raise SpecError("no performance_params block found")
    block_start = text.index("performance_params")
    brace = text.find("{", block_start)
    if brace < 0:
        raise SpecError("performance_params block has no '{'")
    depth = 0
    end = -1
    for i in range(brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                end = i
                break
    if end < 0:
        raise SpecError("unterminated performance_params block")
    block = text[brace + 1:end]

    params = []
    for m in _PARAM_RE.finditer(block):
        name, values_text = m.group(1), m.group(2)
        params.append(Parameter(name, _parse_values(values_text, name)))
    if not params:
        raise SpecError("performance_params block defines no parameters")
    return ParameterSpace(params)


DEFAULT_SPEC_TEXT = """\
/*@ begin PerfTuning (
  def performance_params {
    param TC[]     = range(32,1025,32);
    param BC[]     = range(24,193,24);
    param UIF[]    = range(1,6);
    param PL[]     = [16,48];
    param CFLAGS[] = ['', '-use_fast_math'];
  }
) @*/
"""
"""The paper's Fig. 3 specification (5,120 variants)."""


def default_tuning_spec() -> ParameterSpace:
    """The Table III space, parsed from the Fig. 3 annotation text."""
    return parse_perf_tuning(DEFAULT_SPEC_TEXT)
