"""The paper's contribution: the static-analysis search module.

Workflow (paper Sec. III-C): "Orio collects instruction counts for the
CUDA kernel and computes the instruction mix metrics and occupancy rates
... A rule-based model is invoked, which produces suggested parameter
coordinates for Orio to search."

Concretely:

1. compile the kernel for the target GPU (no execution);
2. run the static analyzer: occupancy model -> ``T*`` (the thread counts
   achieving the best attainable occupancy given register/smem usage);
3. optionally apply the intensity rule (Sec. III-C): intensity > 4.0 keeps
   the upper half of ``T*``, otherwise the lower half;
4. restrict the tuning space's ``TC`` axis accordingly and run any inner
   search (exhaustive by default) on the reduced space.

The reduction in (3)-(4) is what Fig. 6 reports: ~87.5% fewer variants
from ``T*`` alone, ~93.8% with the rule.
"""

from __future__ import annotations

from repro.arch.specs import GPUSpec
from repro.autotune.search.base import Search, SearchResult
from repro.autotune.search.exhaustive import ExhaustiveSearch
from repro.autotune.space import ParameterSpace
from repro.core.analyzer import StaticAnalyzer
from repro.kernels.base import Benchmark


class StaticSearch(Search):
    name = "static"

    def __init__(
        self,
        benchmark: Benchmark,
        gpu: GPUSpec,
        size: int,
        use_rule: bool = False,
        inner: Search | None = None,
    ):
        """``use_rule=False`` is the paper's "Static" configuration
        (T* pruning only); ``use_rule=True`` is "RB" (static + the
        intensity-threshold rule)."""
        self.benchmark = benchmark
        self.gpu = gpu
        self.size = size
        self.use_rule = use_rule
        self.inner = inner if inner is not None else ExhaustiveSearch()
        self.last_report = None

    def pruned_space(self, space: ParameterSpace) -> ParameterSpace:
        """Apply the static model to restrict the ``TC`` axis."""
        analyzer = StaticAnalyzer(self.gpu)
        report = analyzer.analyze(
            list(self.benchmark.specs),
            self.benchmark.param_env(self.size),
            name=self.benchmark.name,
        )
        self.last_report = report
        allowed = (
            report.rule_threads if self.use_rule else report.suggestion.threads
        )
        try:
            return space.restrict("TC", allowed)
        except ValueError:
            # Corpus members may declare TC axes disjoint from the
            # analyzer's suggestion (e.g. tile-multiple-only spaces).
            # Search the unpruned space rather than crash; the reported
            # space reduction is then honestly zero.
            return space

    # The ask/tell protocol delegates to the inner strategy on the
    # pruned space; the base-class ``search`` driver therefore works
    # unchanged, and the inner search inherits any batch-capable
    # objective (engine sharding, persistent cache).

    def reset(self, space: ParameterSpace, budget: int | None = None) -> None:
        self._full_space = space
        self.inner.reset(self.pruned_space(space), budget)

    def ask(self, k: int | None = None) -> list:
        return self.inner.ask(k)

    def tell(self, configs: list, values: list) -> None:
        self.inner.tell(configs, values)

    @property
    def evaluations(self) -> int:
        return self.inner.evaluations

    @property
    def remaining(self) -> int | None:
        return self.inner.remaining

    @property
    def done(self) -> bool:
        return self.inner.done

    def result(self, full_size: int | None = None) -> SearchResult:
        # report the reduction against the ORIGINAL space
        return self.inner.result(
            full_size=full_size if full_size is not None
            else len(self._full_space)
        )
