"""The paper's contribution: the static-analysis search module.

Workflow (paper Sec. III-C): "Orio collects instruction counts for the
CUDA kernel and computes the instruction mix metrics and occupancy rates
... A rule-based model is invoked, which produces suggested parameter
coordinates for Orio to search."

Concretely:

1. compile the kernel for the target GPU (no execution);
2. run the static analyzer: occupancy model -> ``T*`` (the thread counts
   achieving the best attainable occupancy given register/smem usage);
3. optionally apply the intensity rule (Sec. III-C): intensity > 4.0 keeps
   the upper half of ``T*``, otherwise the lower half;
4. restrict the tuning space's ``TC`` axis accordingly and run any inner
   search (exhaustive by default) on the reduced space.

The reduction in (3)-(4) is what Fig. 6 reports: ~87.5% fewer variants
from ``T*`` alone, ~93.8% with the rule.
"""

from __future__ import annotations

from repro.arch.specs import GPUSpec
from repro.autotune.search.base import Objective, Search, SearchResult
from repro.autotune.search.exhaustive import ExhaustiveSearch
from repro.autotune.space import ParameterSpace
from repro.core.analyzer import StaticAnalyzer
from repro.kernels.base import Benchmark


class StaticSearch(Search):
    name = "static"

    def __init__(
        self,
        benchmark: Benchmark,
        gpu: GPUSpec,
        size: int,
        use_rule: bool = False,
        inner: Search | None = None,
    ):
        """``use_rule=False`` is the paper's "Static" configuration
        (T* pruning only); ``use_rule=True`` is "RB" (static + the
        intensity-threshold rule)."""
        self.benchmark = benchmark
        self.gpu = gpu
        self.size = size
        self.use_rule = use_rule
        self.inner = inner if inner is not None else ExhaustiveSearch()
        self.last_report = None

    def pruned_space(self, space: ParameterSpace) -> ParameterSpace:
        """Apply the static model to restrict the ``TC`` axis."""
        analyzer = StaticAnalyzer(self.gpu)
        report = analyzer.analyze(
            list(self.benchmark.specs),
            self.benchmark.param_env(self.size),
            name=self.benchmark.name,
        )
        self.last_report = report
        allowed = (
            report.rule_threads if self.use_rule else report.suggestion.threads
        )
        return space.restrict("TC", allowed)

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        reduced = self.pruned_space(space)
        result = self.inner.search(reduced, objective, budget=budget)
        # report the reduction against the ORIGINAL space
        return SearchResult(
            best_config=result.best_config,
            best_value=result.best_value,
            evaluations=result.evaluations,
            space_size=len(reduced),
            full_space_size=len(space),
            history=result.history,
        )
