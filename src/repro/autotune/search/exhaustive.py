"""Exhaustive search: evaluate every configuration.

Guaranteed to find the optimum; its cost (|space| empirical measurements)
is the baseline every other strategy -- and the paper's static pruning --
is compared against.

Exhaustive enumeration is embarrassingly parallel, so this strategy is
batch-aware: when the objective carries a ``batch`` attribute (installed
by ``Autotuner.tune`` when a sweep engine is configured) the whole
configuration list is evaluated in one call -- sharded across processes
and served from the persistent cache -- instead of one point at a time.
The evaluation order, history, and tie-breaking are identical either way.
"""

from __future__ import annotations

import itertools

from repro.autotune.search.base import Objective, Search, SearchResult
from repro.autotune.space import ParameterSpace


class ExhaustiveSearch(Search):
    name = "exhaustive"

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        batch = getattr(objective, "batch", None)
        if batch is not None:
            configs = list(itertools.islice(iter(space), budget))
            values = batch(configs)
            pairs = zip(configs, values)
        else:
            pairs = (
                (config, objective(config))
                for config in itertools.islice(iter(space), budget)
            )
        best_config = None
        best_value = float("inf")
        history: list = []
        for config, value in pairs:
            self._track(history, config, value)
            if value < best_value:
                best_value = value
                best_config = config
        if best_config is None:
            raise ValueError("no configuration evaluated")
        return self._result(space, best_config, best_value, history)
