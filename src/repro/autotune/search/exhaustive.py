"""Exhaustive search: evaluate every configuration.

Guaranteed to find the optimum; its cost (|space| empirical measurements)
is the baseline every other strategy -- and the paper's static pruning --
is compared against.

Exhaustive enumeration is embarrassingly parallel: the whole space is
proposed as one ask/tell batch, so an engine-backed objective shards it
across worker processes and serves repeats from the persistent cache.
Evaluation order, history, and tie-breaking are identical to the serial
point-by-point path.
"""

from __future__ import annotations

from repro.autotune.search.base import Search
from repro.autotune.space import ParameterSpace


class ExhaustiveSearch(Search):
    name = "exhaustive"

    def _proposals(self, space: ParameterSpace, budget):
        # one batch; the driver truncates it to any budget
        yield list(space)
