"""Exhaustive search: evaluate every configuration.

Guaranteed to find the optimum; its cost (|space| empirical measurements)
is the baseline every other strategy -- and the paper's static pruning --
is compared against.
"""

from __future__ import annotations

from repro.autotune.search.base import Objective, Search, SearchResult
from repro.autotune.space import ParameterSpace


class ExhaustiveSearch(Search):
    name = "exhaustive"

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        best_config = None
        best_value = float("inf")
        history: list = []
        for config in space:
            if budget is not None and len(history) >= budget:
                break
            value = objective(config)
            self._track(history, config, value)
            if value < best_value:
                best_value = value
                best_config = config
        if best_config is None:
            raise ValueError("no configuration evaluated")
        return self._result(space, best_config, best_value, history)
