"""Search strategy interface: the batch ask/tell protocol.

Strategies are *proposal processes*: they never call the objective
themselves.  ``ask(k)`` returns at most ``k`` configurations that need a
fresh evaluation; the caller measures them however it likes -- serially,
through :meth:`~repro.autotune.measure.Measurer.measure_many`, or
sharded across a process pool by the sweep engine -- and reports the
values back with ``tell(configs, values)``.  ``search`` is the bundled
driver running that loop against a plain callable or a batch-capable
objective (one with a ``batch`` attribute, such as
:class:`~repro.autotune.measure.BatchObjective`).

The protocol centralizes the bookkeeping each strategy used to
duplicate -- history, budget accounting, de-duplication of repeated
proposals, best-so-far tracking -- and removes two classes of seed bugs
by construction:

- **budget-exhaustion sentinels**: a strategy whose batch would exceed
  the remaining budget gets the truncated prefix evaluated and is then
  terminated cleanly, instead of being fed uncached ``inf`` values that
  poison selection while its outer loop keeps spinning;
- **all-infeasible spaces**: when every evaluation came back ``inf``
  (nothing launchable), the result reports the first evaluated
  configuration at ``inf`` instead of raising.

Subclasses implement :meth:`_proposals`, a generator yielding batches of
candidate configurations and receiving their objective values::

    def _proposals(self, space, budget):
        values = yield [config, config, ...]   # one batch
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro import obs
from repro.autotune.space import ParameterSpace

Objective = Callable[[dict], float]


def config_key(config: dict) -> tuple:
    """Hashable identity of a configuration (order-insensitive)."""
    return tuple(sorted(config.items()))


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_config: dict
    best_value: float
    evaluations: int
    space_size: int
    """Size of the space the strategy actually searched (after any
    model-based pruning) -- the quantity Fig. 6 compares."""

    full_space_size: int
    """Size of the original, unpruned space."""

    history: list = field(default_factory=list)
    """(config, value) pairs in evaluation order."""

    @property
    def space_reduction(self) -> float:
        """Fractional search-space reduction (the Fig. 6 'improvement')."""
        if self.full_space_size == 0:
            return 0.0
        return 1.0 - self.space_size / self.full_space_size


class Search:
    """Base class: minimize ``objective`` over a finite space."""

    name = "base"

    reuse_evaluations = True
    """Serve repeated proposals from the evaluation cache instead of
    re-measuring (and re-charging the budget).  Strategies whose budget
    counts *proposals* rather than distinct points -- simulated
    annealing -- turn this off."""

    _MAX_CACHED_ROUNDS = 100_000
    """Backstop against a strategy proposing already-evaluated points
    forever without consuming budget."""

    # -- strategy interface --------------------------------------------------

    def _proposals(self, space: ParameterSpace,
                   budget: int | None) -> Iterator[list]:
        """Yield batches of configurations; receive their values."""
        raise NotImplementedError

    def default_budget(self, space: ParameterSpace) -> int | None:
        """Evaluation limit when no explicit ``budget`` is given."""
        return getattr(self, "budget", None)

    # -- ask/tell ------------------------------------------------------------

    def reset(self, space: ParameterSpace, budget: int | None = None) -> None:
        """Start a fresh run over ``space``; must precede ``ask``."""
        self._space = space
        self._budget = (budget if budget is not None
                        else self.default_budget(space))
        self._gen = self._proposals(space, self._budget)
        self._started = False
        self._reply: list | None = None
        self._wants: list | None = None
        self._fresh: list | None = None
        self._truncated = False
        self._done = False
        self._history: list = []
        self._cache: dict = {}
        self._first_config: dict | None = None
        self._best_config: dict | None = None
        self._best_value = float("inf")

    @property
    def evaluations(self) -> int:
        return len(self._history)

    @property
    def remaining(self) -> int | None:
        """Fresh evaluations left in the budget (``None`` = unlimited)."""
        if self._budget is None:
            return None
        return max(self._budget - len(self._history), 0)

    @property
    def done(self) -> bool:
        return self._done

    def ask(self, k: int | None = None) -> list:
        """The next batch of at most ``k`` configurations to evaluate.

        An empty list means the strategy is finished.  Every returned
        configuration must be answered by exactly one ``tell``.
        ``k=None`` defaults to the remaining budget, so manual drivers
        cannot overrun it by forgetting to thread ``remaining`` through.
        """
        if k is None:
            k = self.remaining
        if self._done:
            return []
        if self._fresh is not None:
            raise RuntimeError("ask() while a batch is awaiting tell()")
        rounds = 0
        while True:
            if self._wants is None:
                try:
                    if self._started:
                        wants = self._gen.send(self._reply)
                    else:
                        wants = next(self._gen)
                        self._started = True
                except StopIteration:
                    self._finish()
                    return []
                self._reply = None
                self._wants = [dict(c) for c in wants]
            if self.reuse_evaluations:
                fresh, seen = [], set()
                for c in self._wants:
                    key = config_key(c)
                    if key in self._cache or key in seen:
                        continue
                    seen.add(key)
                    fresh.append(c)
            else:
                fresh = list(self._wants)
            if not fresh:
                # everything already measured: answer from the cache and
                # let the strategy propose again, free of budget
                self._reply = [
                    self._cache[config_key(c)] for c in self._wants
                ]
                self._wants = None
                rounds += 1
                if rounds >= self._MAX_CACHED_ROUNDS:
                    self._finish()
                    return []
                continue
            if k is not None and len(fresh) > k:
                if k <= 0:
                    self._finish()
                    return []
                fresh = fresh[:k]
                self._truncated = True
            self._fresh = fresh
            return [dict(c) for c in fresh]

    def tell(self, configs: list, values: list) -> None:
        """Report objective values for the batch ``ask`` returned."""
        if self._fresh is None:
            raise RuntimeError("tell() without a pending ask()")
        if len(configs) != len(values):
            raise ValueError("tell() needs one value per configuration")
        if [config_key(c) for c in configs] != [
            config_key(c) for c in self._fresh
        ]:
            raise ValueError("tell() configs do not match the asked batch")
        for config, value in zip(configs, values):
            self._record(config, float(value))
        self._fresh = None
        if self._truncated:
            # budget ran out mid-batch: terminate the strategy cleanly
            # (the prefix is recorded; the generator is never resumed)
            self._finish()
            return
        if self.reuse_evaluations:
            self._reply = [self._cache[config_key(c)] for c in self._wants]
        else:
            self._reply = [float(v) for v in values]
        self._wants = None

    def result(self, full_size: int | None = None) -> SearchResult:
        """The run's outcome (valid any time after the first ``tell``)."""
        if not self._history:
            raise ValueError(f"{self.name} search evaluated nothing")
        best_config, best_value = self._best_config, self._best_value
        if best_config is None:
            # every variant was unlaunchable: report the first one
            # evaluated at inf rather than crashing
            best_config, best_value = self._first_config, float("inf")
        return SearchResult(
            best_config=dict(best_config),
            best_value=best_value,
            evaluations=len(self._history),
            space_size=len(self._space),
            full_space_size=(full_size if full_size is not None
                             else len(self._space)),
            history=list(self._history),
        )

    # -- the bundled driver --------------------------------------------------

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        """Drive ask/tell against ``objective`` until done or out of
        budget.  Batch-capable objectives (a ``batch`` attribute mapping
        ``list[config] -> list[float]``) evaluate whole batches at once;
        plain callables are applied point by point.  Results are
        identical either way."""
        self.reset(space, budget)
        batch_eval = getattr(objective, "batch", None)
        round_no = 0
        while not self.done:
            k = self.remaining
            if k is not None and k <= 0:
                break
            configs = self.ask(k)
            if not configs:
                break
            # one span per ask/tell round; engine batch spans nest here
            with obs.span("round", key=round_no,
                          args={"strategy": self.name,
                                "batch": len(configs)}):
                if batch_eval is not None:
                    values = batch_eval(configs)
                else:
                    values = [objective(c) for c in configs]
            self.tell(configs, values)
            obs.add("search.rounds", strategy=self.name)
            obs.add("search.evaluations", len(configs),
                    strategy=self.name)
            round_no += 1
        return self.result()

    # -- internals -----------------------------------------------------------

    def _record(self, config: dict, value: float) -> None:
        self._history.append((dict(config), value))
        self._cache[config_key(config)] = value
        if self._first_config is None:
            self._first_config = dict(config)
        if value < self._best_value:
            self._best_config = dict(config)
            self._best_value = value

    def _finish(self) -> None:
        self._done = True
        self._wants = None
        self._fresh = None
        gen = getattr(self, "_gen", None)
        if gen is not None:
            gen.close()
