"""Search strategy interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.autotune.space import ParameterSpace

Objective = Callable[[dict], float]


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_config: dict
    best_value: float
    evaluations: int
    space_size: int
    """Size of the space the strategy actually searched (after any
    model-based pruning) -- the quantity Fig. 6 compares."""

    full_space_size: int
    """Size of the original, unpruned space."""

    history: list = field(default_factory=list)
    """(config, value) pairs in evaluation order."""

    @property
    def space_reduction(self) -> float:
        """Fractional search-space reduction (the Fig. 6 'improvement')."""
        if self.full_space_size == 0:
            return 0.0
        return 1.0 - self.space_size / self.full_space_size


class Search:
    """Base class: minimize ``objective`` over a finite space."""

    name = "base"

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _track(history, config, value):
        history.append((dict(config), value))

    @staticmethod
    def _result(space, best_config, best_value, history,
                full_size=None) -> SearchResult:
        return SearchResult(
            best_config=dict(best_config),
            best_value=best_value,
            evaluations=len(history),
            space_size=len(space),
            full_space_size=full_size if full_size is not None else len(space),
            history=history,
        )
