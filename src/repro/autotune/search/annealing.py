"""Multi-chain simulated annealing over the parameter lattice.

``chains`` independent Metropolis chains run side by side; every step
proposes one candidate per chain, and the whole set is evaluated as one
ask/tell batch (sharded across workers and cache-served by an
engine-backed objective).  Moves perturb one coordinate by a geometric
step; acceptance follows the Metropolis criterion with a geometric
cooling schedule shared by all chains.  Infinite objective values
(unlaunchable variants) are always rejected; chains that drew an
unlaunchable *start* are re-seeded from the best launchable start when
one exists, and a chain still sitting on an ``inf`` point proposes
global random jumps instead of local moves -- a chain can no longer
wedge on an unlaunchable current point.

The budget counts proposals, not distinct configurations (chains may
revisit points), so ``evaluations == budget`` exactly.
"""

from __future__ import annotations

import math

from repro.autotune.search.base import Search
from repro.autotune.space import ParameterSpace
from repro.util.rng import rng_for


class SimulatedAnnealingSearch(Search):
    name = "annealing"

    reuse_evaluations = False
    """A revisited point is re-charged to the budget, preserving the
    classic evaluations-per-run semantics (the measurement itself is
    still deduplicated by the engine cache)."""

    def __init__(
        self,
        budget: int = 200,
        t_initial: float = 1.0,
        t_final: float = 1e-3,
        chains: int = 4,
        seed: int | None = None,
    ):
        if budget <= 1:
            raise ValueError("budget must exceed 1")
        if not (0 < t_final < t_initial):
            raise ValueError("need 0 < t_final < t_initial")
        if chains < 1:
            raise ValueError("chains must be >= 1")
        self.budget = budget
        self.t_initial = t_initial
        self.t_final = t_final
        self.chains = chains
        self.seed = seed

    def _proposals(self, space: ParameterSpace, budget):
        n = budget if budget is not None else self.budget
        rng = rng_for("search", "annealing", self.seed)
        n_chains = max(1, min(self.chains, n // 2))

        starts = [space.random_config(rng) for _ in range(n_chains)]
        values = yield starts

        # chains whose start is unlaunchable adopt the best launchable
        # start instead of burning budget stuck on an inf current point
        best_i = None
        for i, v in enumerate(values):
            if math.isfinite(v) and (best_i is None or v < values[best_i]):
                best_i = i
        chains = []
        for config, value in zip(starts, values):
            if not math.isfinite(value) and best_i is not None:
                config, value = starts[best_i], values[best_i]
            chains.append([list(space.coords_of(config)), value])

        steps = max(1, math.ceil((n - n_chains) / n_chains))
        cooling = (self.t_final / self.t_initial) ** (1.0 / max(steps - 1, 1))
        temp = self.t_initial
        dims = len(space.parameters)

        while True:  # the driver stops the loop when the budget is spent
            cands = []
            for coords, cur_val in chains:
                if not math.isfinite(cur_val):
                    # still nowhere launchable: jump globally instead of
                    # burning budget on local moves around an inf point
                    cc = list(space.coords_of(space.random_config(rng)))
                else:
                    d = int(rng.integers(dims))
                    step = int(rng.choice([-3, -2, -1, 1, 2, 3]))
                    cc = list(coords)
                    cc[d] += step
                cands.append(list(space.clip(cc)))
            values = yield [space.config_at(cc) for cc in cands]
            for chain, cc, val in zip(chains, cands, values):
                cur_val = chain[1]
                accept = False
                if math.isfinite(val):
                    if val <= cur_val or not math.isfinite(cur_val):
                        accept = True
                    else:
                        scale = max(abs(cur_val), 1e-30)
                        prob = math.exp(-(val - cur_val) / (temp * scale))
                        accept = rng.random() < prob
                if accept:
                    chain[0], chain[1] = list(cc), val
            temp = max(temp * cooling, self.t_final)
