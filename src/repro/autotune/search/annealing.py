"""Simulated annealing over the parameter lattice.

Moves perturb one coordinate by a geometric step; acceptance follows the
Metropolis criterion with a geometric cooling schedule.  Infinite
objective values (unlaunchable variants) are always rejected.
"""

from __future__ import annotations

import math

from repro.autotune.search.base import Objective, Search, SearchResult
from repro.autotune.space import ParameterSpace
from repro.util.rng import rng_for


class SimulatedAnnealingSearch(Search):
    name = "annealing"

    def __init__(
        self,
        budget: int = 200,
        t_initial: float = 1.0,
        t_final: float = 1e-3,
        seed: int | None = None,
    ):
        if budget <= 1:
            raise ValueError("budget must exceed 1")
        if not (0 < t_final < t_initial):
            raise ValueError("need 0 < t_final < t_initial")
        self.budget = budget
        self.t_initial = t_initial
        self.t_final = t_final
        self.seed = seed

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        n = budget if budget is not None else self.budget
        rng = rng_for("search", "annealing", self.seed)
        history: list = []

        coords = space.coords_of(space.random_config(rng))
        current = space.config_at(coords)
        cur_val = objective(current)
        self._track(history, current, cur_val)
        best_config, best_value = current, cur_val

        cooling = (self.t_final / self.t_initial) ** (1.0 / max(n - 1, 1))
        temp = self.t_initial
        dims = len(space.parameters)

        while len(history) < n:
            d = int(rng.integers(dims))
            step = int(rng.choice([-3, -2, -1, 1, 2, 3]))
            cand_coords = list(coords)
            cand_coords[d] += step
            cand_coords = space.clip(cand_coords)
            cand = space.config_at(cand_coords)
            val = objective(cand)
            self._track(history, cand, val)
            if val < best_value:
                best_config, best_value = cand, val
            accept = False
            if math.isfinite(val):
                if val <= cur_val or not math.isfinite(cur_val):
                    accept = True
                else:
                    scale = max(abs(cur_val), 1e-30)
                    prob = math.exp(-(val - cur_val) / (temp * scale))
                    accept = rng.random() < prob
            if accept:
                coords, current, cur_val = tuple(cand_coords), cand, val
            temp = max(temp * cooling, self.t_final)

        return self._result(space, best_config, best_value, history)
