"""Search strategies over tuning spaces.

The paper (Sec. III-C): "Current search algorithms in Orio include
exhaustive, random, simulated annealing, genetic, and Nelder-Mead simplex
methods.  Adding this tool as a new search module in Orio demonstrates that
our approach can easily be integrated into a general autotuning
framework."  :class:`StaticSearch` is that new module: it prunes the
thread axis to the analyzer's ``T*`` (optionally further halved by the
intensity rule) and runs any inner strategy on the reduced space.

Every strategy speaks the batch ask/tell protocol (see
:mod:`repro.autotune.search.base`): ``ask(k)`` proposes up to ``k``
configurations -- a population, a set of annealing chains, a simplex, a
block of random samples, the whole space -- and ``tell`` reports their
measured values.  The legacy ``search(space, objective, budget)`` entry
point survives as a thin driver over that loop, preferring an
objective's ``batch`` attribute so every evaluation can be sharded
across processes and served from the persistent cache by the sweep
engine.
"""

from repro.autotune.search.base import Search, SearchResult, config_key
from repro.autotune.search.exhaustive import ExhaustiveSearch
from repro.autotune.search.random_search import RandomSearch
from repro.autotune.search.annealing import SimulatedAnnealingSearch
from repro.autotune.search.genetic import GeneticSearch
from repro.autotune.search.simplex import NelderMeadSearch
from repro.autotune.search.static_search import StaticSearch

SEARCH_REGISTRY = {
    "exhaustive": ExhaustiveSearch,
    "random": RandomSearch,
    "annealing": SimulatedAnnealingSearch,
    "genetic": GeneticSearch,
    "simplex": NelderMeadSearch,
    "static": StaticSearch,
}


def get_search(name: str, **kwargs) -> Search:
    """Instantiate a search strategy by registry name."""
    key = name.strip().lower()
    if key not in SEARCH_REGISTRY:
        raise KeyError(
            f"unknown search {name!r}; available: {sorted(SEARCH_REGISTRY)}"
        )
    return SEARCH_REGISTRY[key](**kwargs)


__all__ = [
    "Search",
    "SearchResult",
    "config_key",
    "ExhaustiveSearch",
    "RandomSearch",
    "SimulatedAnnealingSearch",
    "GeneticSearch",
    "NelderMeadSearch",
    "StaticSearch",
    "SEARCH_REGISTRY",
    "get_search",
]
