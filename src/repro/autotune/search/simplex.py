"""Nelder-Mead simplex search mapped onto the discrete lattice.

The simplex lives in continuous coordinate space (one dimension per
parameter, in index units); every evaluation snaps to the nearest lattice
point.  Standard reflection / expansion / contraction / shrink moves with
restart on degenerate simplices.

Initial, restart, and shrink simplices are whole ask/tell batches (an
engine-backed objective measures them in parallel and serves repeats
from the cache); the inherently sequential reflection / expansion /
contraction probes go out as single-point batches.  Snapped points that
were already evaluated are answered from the evaluation cache without
charging the budget, and when the budget runs out the strategy is
terminated cleanly -- no ``inf`` sentinels ever enter the simplex
ordering.
"""

from __future__ import annotations

import numpy as np

from repro.autotune.search.base import Search
from repro.autotune.space import ParameterSpace
from repro.util.rng import rng_for


class NelderMeadSearch(Search):
    name = "simplex"

    def __init__(self, budget: int = 150, seed: int | None = None,
                 alpha: float = 1.0, gamma: float = 2.0,
                 rho: float = 0.5, sigma: float = 0.5):
        if budget <= 2:
            raise ValueError("budget must exceed 2")
        self.budget = budget
        self.seed = seed
        self.alpha, self.gamma, self.rho, self.sigma = alpha, gamma, rho, sigma

    def _proposals(self, space: ParameterSpace, budget):
        n_budget = budget if budget is not None else self.budget
        rng = rng_for("search", "simplex", self.seed)
        dims = len(space.parameters)

        def snap(x: np.ndarray) -> dict:
            return space.config_at(space.clip(np.round(x).astype(int)))

        def random_simplex() -> list:
            base = np.array(
                [rng.integers(len(p)) for p in space.parameters], dtype=float
            )
            pts = [base]
            for d in range(dims):
                v = base.copy()
                span = max(1.0, (len(space.parameters[d]) - 1) / 3.0)
                v[d] += span if rng.random() < 0.5 else -span
                pts.append(v)
            return pts

        simplex = random_simplex()
        values = list((yield [snap(x) for x in simplex]))

        # continuous coordinates can converge while snapping to the same
        # lattice points (charging nothing), so bound the move count
        max_moves = 50 * n_budget + 100
        for _move in range(max_moves):
            order = np.argsort(values)
            simplex = [simplex[i] for i in order]
            values = [values[i] for i in order]
            centroid = np.mean(simplex[:-1], axis=0)
            worst = simplex[-1]

            if np.allclose(simplex[0], worst):
                simplex = random_simplex()  # degenerate: restart
                values = list((yield [snap(x) for x in simplex]))
                continue

            refl = centroid + self.alpha * (centroid - worst)
            f_refl = (yield [snap(refl)])[0]
            if values[0] <= f_refl < values[-2]:
                simplex[-1], values[-1] = refl, f_refl
            elif f_refl < values[0]:
                exp = centroid + self.gamma * (refl - centroid)
                f_exp = (yield [snap(exp)])[0]
                if f_exp < f_refl:
                    simplex[-1], values[-1] = exp, f_exp
                else:
                    simplex[-1], values[-1] = refl, f_refl
            else:
                contr = centroid + self.rho * (worst - centroid)
                f_contr = (yield [snap(contr)])[0]
                if f_contr < values[-1]:
                    simplex[-1], values[-1] = contr, f_contr
                else:
                    best = simplex[0]
                    simplex = [best] + [
                        best + self.sigma * (x - best) for x in simplex[1:]
                    ]
                    shrunk = list((yield [snap(x) for x in simplex[1:]]))
                    values = [values[0]] + shrunk
