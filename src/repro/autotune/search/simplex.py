"""Nelder-Mead simplex search mapped onto the discrete lattice.

The simplex lives in continuous coordinate space (one dimension per
parameter, in index units); every evaluation snaps to the nearest lattice
point.  Standard reflection / expansion / contraction / shrink moves with
restart on degenerate simplices.
"""

from __future__ import annotations

import numpy as np

from repro.autotune.search.base import Objective, Search, SearchResult
from repro.autotune.space import ParameterSpace
from repro.util.rng import rng_for


class NelderMeadSearch(Search):
    name = "simplex"

    def __init__(self, budget: int = 150, seed: int | None = None,
                 alpha: float = 1.0, gamma: float = 2.0,
                 rho: float = 0.5, sigma: float = 0.5):
        if budget <= 2:
            raise ValueError("budget must exceed 2")
        self.budget = budget
        self.seed = seed
        self.alpha, self.gamma, self.rho, self.sigma = alpha, gamma, rho, sigma

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        n_budget = budget if budget is not None else self.budget
        rng = rng_for("search", "simplex", self.seed)
        dims = len(space.parameters)
        history: list = []
        cache: dict = {}

        def eval_point(x: np.ndarray) -> float:
            coords = space.clip(np.round(x).astype(int))
            config = space.config_at(coords)
            key = coords
            if key not in cache:
                if len(history) >= n_budget:
                    return float("inf")
                val = objective(config)
                self._track(history, config, val)
                cache[key] = val
            return cache[key]

        def random_simplex() -> list:
            base = np.array(
                [rng.integers(len(p)) for p in space.parameters], dtype=float
            )
            pts = [base]
            for d in range(dims):
                v = base.copy()
                span = max(1.0, (len(space.parameters[d]) - 1) / 3.0)
                v[d] += span if rng.random() < 0.5 else -span
                pts.append(v)
            return pts

        simplex = random_simplex()
        values = [eval_point(x) for x in simplex]

        while len(history) < n_budget:
            order = np.argsort(values)
            simplex = [simplex[i] for i in order]
            values = [values[i] for i in order]
            centroid = np.mean(simplex[:-1], axis=0)
            worst = simplex[-1]

            if np.allclose(simplex[0], worst):
                simplex = random_simplex()  # degenerate: restart
                values = [eval_point(x) for x in simplex]
                continue

            refl = centroid + self.alpha * (centroid - worst)
            f_refl = eval_point(refl)
            if values[0] <= f_refl < values[-2]:
                simplex[-1], values[-1] = refl, f_refl
            elif f_refl < values[0]:
                exp = centroid + self.gamma * (refl - centroid)
                f_exp = eval_point(exp)
                if f_exp < f_refl:
                    simplex[-1], values[-1] = exp, f_exp
                else:
                    simplex[-1], values[-1] = refl, f_refl
            else:
                contr = centroid + self.rho * (worst - centroid)
                f_contr = eval_point(contr)
                if f_contr < values[-1]:
                    simplex[-1], values[-1] = contr, f_contr
                else:
                    best = simplex[0]
                    simplex = [best] + [
                        best + self.sigma * (x - best) for x in simplex[1:]
                    ]
                    values = [values[0]] + [
                        eval_point(x) for x in simplex[1:]
                    ]

        if not cache:
            raise ValueError("simplex search evaluated nothing")
        best_key = min(cache, key=cache.get)
        return self._result(
            space, space.config_at(best_key), cache[best_key], history
        )
