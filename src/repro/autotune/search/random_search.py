"""Random search: uniform sampling without replacement (within budget).

Samples are proposed in blocks, so an engine-backed objective measures
each block in one parallel, cache-served batch; the sampled sequence is
identical to drawing one config at a time.
"""

from __future__ import annotations

from repro.autotune.search.base import Search, config_key
from repro.autotune.space import ParameterSpace
from repro.util.rng import rng_for


class RandomSearch(Search):
    name = "random"

    def __init__(self, budget: int = 100, block: int = 32,
                 seed: int | None = None):
        if budget <= 0:
            raise ValueError("budget must be positive")
        if block <= 0:
            raise ValueError("block must be positive")
        self.budget = budget
        self.block = block
        self.seed = seed

    def _proposals(self, space: ParameterSpace, budget):
        n = min(budget if budget is not None else self.budget, len(space))
        rng = rng_for("search", "random", self.seed)
        seen: set = set()
        produced = 0
        attempts = 0
        while produced < n and attempts < 50 * n:
            batch: list = []
            want = min(self.block, n - produced)
            while len(batch) < want and attempts < 50 * n:
                attempts += 1
                config = space.random_config(rng)
                key = config_key(config)
                if key in seen:
                    continue
                seen.add(key)
                batch.append(config)
            if not batch:
                break
            yield batch
            produced += len(batch)
