"""Random search: uniform sampling without replacement (within budget)."""

from __future__ import annotations

from repro.autotune.search.base import Objective, Search, SearchResult
from repro.autotune.space import ParameterSpace
from repro.util.rng import rng_for


class RandomSearch(Search):
    name = "random"

    def __init__(self, budget: int = 100, seed: int | None = None):
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.budget = budget
        self.seed = seed

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        n = budget if budget is not None else self.budget
        n = min(n, len(space))
        rng = rng_for("search", "random", self.seed)
        seen: set = set()
        history: list = []
        best_config = None
        best_value = float("inf")
        attempts = 0
        while len(history) < n and attempts < 50 * n:
            attempts += 1
            config = space.random_config(rng)
            key = tuple(sorted(config.items()))
            if key in seen:
                continue
            seen.add(key)
            value = objective(config)
            self._track(history, config, value)
            if value < best_value:
                best_value = value
                best_config = config
        if best_config is None:
            raise ValueError("random search evaluated nothing")
        return self._result(space, best_config, best_value, history)
