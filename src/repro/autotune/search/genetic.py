"""Genetic search: tournament selection, uniform crossover, lattice
mutation, elitism."""

from __future__ import annotations

from repro.autotune.search.base import Objective, Search, SearchResult
from repro.autotune.space import ParameterSpace
from repro.util.rng import rng_for


class GeneticSearch(Search):
    name = "genetic"

    def __init__(
        self,
        population: int = 24,
        generations: int = 10,
        mutation_rate: float = 0.15,
        elite: int = 2,
        seed: int | None = None,
    ):
        if population < 4:
            raise ValueError("population must be >= 4")
        if not (0.0 <= mutation_rate <= 1.0):
            raise ValueError("mutation_rate must be in [0,1]")
        if elite >= population:
            raise ValueError("elite must be smaller than population")
        self.population = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.elite = elite
        self.seed = seed

    def search(self, space: ParameterSpace, objective: Objective,
               budget: int | None = None) -> SearchResult:
        rng = rng_for("search", "genetic", self.seed)
        history: list = []
        cache: dict = {}

        def fitness(config: dict) -> float:
            key = tuple(sorted(config.items()))
            if key not in cache:
                if budget is not None and len(history) >= budget:
                    return float("inf")
                val = objective(config)
                self._track(history, config, val)
                cache[key] = val
            return cache[key]

        pop = [space.random_config(rng) for _ in range(self.population)]
        dims = space.parameters

        def tournament() -> dict:
            a, b = rng.integers(len(pop)), rng.integers(len(pop))
            ca, cb = pop[int(a)], pop[int(b)]
            return ca if fitness(ca) <= fitness(cb) else cb

        for _gen in range(self.generations):
            if budget is not None and len(history) >= budget:
                break
            scored = sorted(pop, key=fitness)
            nxt = [dict(c) for c in scored[: self.elite]]
            while len(nxt) < self.population:
                p1, p2 = tournament(), tournament()
                child = {
                    p.name: (p1 if rng.random() < 0.5 else p2)[p.name]
                    for p in dims
                }
                for p in dims:
                    if rng.random() < self.mutation_rate:
                        child[p.name] = p.values[int(rng.integers(len(p)))]
                nxt.append(child)
            pop = nxt

        best_config = min(cache, key=cache.get)
        return self._result(
            space, dict(best_config), cache[best_config], history
        )
