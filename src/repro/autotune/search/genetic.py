"""Genetic search: tournament selection, uniform crossover, lattice
mutation, elitism.

Whole populations are proposed per generation: every member that has not
been scored yet goes out as one ask/tell batch, which an engine-backed
objective shards across workers and serves from the cache.  Elites and
repeated individuals are re-scored from the evaluation cache without
charging the budget, and a generation whose batch exceeds the remaining
budget is truncated and the run terminated cleanly -- no ``inf``
sentinels ever enter tournament selection.
"""

from __future__ import annotations

from repro.autotune.search.base import Search, config_key
from repro.autotune.space import ParameterSpace
from repro.util.rng import rng_for


class GeneticSearch(Search):
    name = "genetic"

    def __init__(
        self,
        population: int = 24,
        generations: int = 10,
        mutation_rate: float = 0.15,
        elite: int = 2,
        seed: int | None = None,
    ):
        if population < 4:
            raise ValueError("population must be >= 4")
        if not (0.0 <= mutation_rate <= 1.0):
            raise ValueError("mutation_rate must be in [0,1]")
        if elite >= population:
            raise ValueError("elite must be smaller than population")
        self.population = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.elite = elite
        self.seed = seed

    def _proposals(self, space: ParameterSpace, budget):
        rng = rng_for("search", "genetic", self.seed)
        dims = space.parameters
        fit: dict = {}
        pop = [space.random_config(rng) for _ in range(self.population)]

        def tournament() -> dict:
            a, b = rng.integers(len(pop)), rng.integers(len(pop))
            ca, cb = pop[int(a)], pop[int(b)]
            return ca if fit[config_key(ca)] <= fit[config_key(cb)] else cb

        for _gen in range(self.generations):
            fresh, seen = [], set()
            for c in pop:
                key = config_key(c)
                if key not in fit and key not in seen:
                    seen.add(key)
                    fresh.append(c)
            if fresh:
                values = yield fresh
                for c, v in zip(fresh, values):
                    fit[config_key(c)] = v
            scored = sorted(pop, key=lambda c: fit[config_key(c)])
            nxt = [dict(c) for c in scored[: self.elite]]
            while len(nxt) < self.population:
                p1, p2 = tournament(), tournament()
                child = {
                    p.name: (p1 if rng.random() < 0.5 else p2)[p.name]
                    for p in dims
                }
                for p in dims:
                    if rng.random() < self.mutation_rate:
                        child[p.name] = p.values[int(rng.integers(len(p)))]
                nxt.append(child)
            pop = nxt
