"""Result collection and the paper's rank split.

"The execution times were sorted in ascending order and the ranks were
split along the 50th percentile.  Rank 1 represents the upper-half of the
50th percentile (good performers), while Rank 2 represents the lower
portion (poor performers)."  (Paper Sec. IV-A.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autotune.measure import VariantMeasurement
from repro.util.stats import describe


@dataclass(frozen=True)
class RankedVariant:
    measurement: VariantMeasurement
    rank: int
    """1 = good performer (faster half), 2 = poor performer."""


def rank_split(measurements) -> list[RankedVariant]:
    """Sort by time ascending and split at the 50th percentile.

    Ranking happens *within each input size* (comparing a 32-point run
    against a 512-point run by absolute time would put every small-size
    variant in Rank 1 regardless of its configuration); the per-size rank
    labels are then pooled, which is how the paper's Fig. 4 histograms
    aggregate the five input sizes.

    Unlaunchable variants (infinite time) are excluded from ranking, as a
    failed launch is excluded from a real sweep.
    """
    by_size: dict = {}
    for m in measurements:
        if m.launchable:
            by_size.setdefault(m.size, []).append(m)
    out = []
    for size in sorted(by_size):
        ordered = sorted(by_size[size], key=lambda m: m.seconds)
        half = len(ordered) // 2
        for i, m in enumerate(ordered):
            out.append(RankedVariant(m, 1 if i < half else 2))
    return out


@dataclass
class TuningResults:
    """All measurements of one sweep plus derived statistics."""

    benchmark: str
    gpu_name: str
    measurements: list = field(default_factory=list)

    def add(self, m: VariantMeasurement) -> None:
        self.measurements.append(m)

    def ranked(self) -> list[RankedVariant]:
        return rank_split(self.measurements)

    def best(self) -> VariantMeasurement:
        valid = [m for m in self.measurements if m.launchable]
        if not valid:
            raise ValueError("no launchable variants measured")
        return min(valid, key=lambda m: m.seconds)

    def rank_statistics(self, rank: int) -> dict:
        """The Table V statistics bundle for one rank group.

        Returns ``occupancy`` (mean/std/mode as percentages),
        ``reg_instructions`` (mean/std), ``regs_allocated`` and the thread
        count quartiles.
        """
        group = [rv.measurement for rv in self.ranked() if rv.rank == rank]
        if not group:
            raise ValueError(f"rank {rank} group is empty")
        occ = describe([m.occupancy * 100.0 for m in group])
        reg = describe([m.reg_instructions for m in group])
        threads = describe([float(m.config["TC"]) for m in group])
        return {
            "count": len(group),
            "occ_mean": occ["mean"],
            "occ_std": occ["std"],
            "occ_mode": occ["mode"],
            "reg_mean": reg["mean"],
            "reg_std": reg["std"],
            "regs_allocated": max(m.regs_per_thread for m in group),
            "threads_p25": threads["p25"],
            "threads_p50": threads["p50"],
            "threads_p75": threads["p75"],
        }

    def thread_histogram(self, rank: int, bins=None):
        """Thread-count histogram for one rank group (Fig. 4)."""
        import numpy as np

        if bins is None:
            bins = np.arange(0, 1057, 64)
        vals = [
            float(rv.measurement.config["TC"])
            for rv in self.ranked()
            if rv.rank == rank
        ]
        counts, edges = np.histogram(np.asarray(vals), bins=bins)
        return counts, edges
