"""The autotuner facade: the piece of Orio the paper plugs into."""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.arch.specs import GPUSpec
from repro.autotune.measure import Measurer
from repro.autotune.results import TuningResults
from repro.autotune.search import (
    Search,
    SearchResult,
    StaticSearch,
    get_search,
)
from repro.autotune.space import ParameterSpace
from repro.kernels.base import Benchmark
from repro.sim.timing import DEFAULT_PARAMS, ModelParams


@dataclass
class TuneOutcome:
    """What one tuning run produced."""

    search: SearchResult
    results: TuningResults
    measurer: Measurer

    @property
    def best_config(self) -> dict:
        return self.search.best_config

    @property
    def best_seconds(self) -> float:
        return self.search.best_value


class Autotuner:
    """Tunes one benchmark on one (simulated) GPU.

    >>> from repro.kernels import get_benchmark
    >>> from repro.arch import get_gpu
    >>> tuner = Autotuner(get_benchmark("atax"), get_gpu("kepler"))
    >>> out = tuner.tune(size=64, search="static")   # doctest: +SKIP
    """

    def __init__(
        self,
        benchmark: Benchmark,
        gpu: GPUSpec,
        space: ParameterSpace | None = None,
        model_params: ModelParams = DEFAULT_PARAMS,
    ):
        self.benchmark = benchmark
        self.gpu = gpu
        # a benchmark may declare its own default space (tile-constrained
        # corpus members); everything else inherits the Table III space
        self.space = space if space is not None else benchmark.default_space()
        self.model_params = model_params

    def make_search(self, search, use_rule: bool = False,
                    size: int | None = None, **kwargs) -> Search:
        """Build a strategy; ``"static"`` wires in benchmark/GPU context."""
        if isinstance(search, Search):
            return search
        if search == "static":
            if size is None:
                raise ValueError("static search needs the input size")
            inner_name = kwargs.pop("inner", None)
            inner = get_search(inner_name, **kwargs) if inner_name else None
            return StaticSearch(
                self.benchmark, self.gpu, size=size, use_rule=use_rule,
                inner=inner,
            )
        return get_search(search, **kwargs)

    def _make_engine(self, engine, jobs, cache):
        """Coerce the ``engine``/``jobs``/``cache`` arguments into a
        :class:`~repro.engine.engine.SweepEngine` (or ``None`` for the
        plain serial path)."""
        if engine is not None:
            return engine
        if jobs == 1 and cache is None:
            return None
        # imported lazily: repro.engine sits on top of repro.autotune
        from repro.engine import SweepEngine

        return SweepEngine(jobs=jobs, cache=cache)

    def tune(
        self,
        size: int,
        search="exhaustive",
        use_rule: bool = False,
        budget: int | None = None,
        engine=None,
        jobs: int = 1,
        cache=None,
        **search_kwargs,
    ) -> TuneOutcome:
        """Run one tuning sweep at one input size.

        Every strategy evaluates through a
        :class:`~repro.autotune.measure.BatchObjective`: the ask/tell
        driver collects each proposal batch (a population, a set of
        annealing chains, a simplex, a block of random samples, the
        whole space) and measures it in one call.  With ``engine`` (or
        ``jobs``/``cache``) those batches are sharded across worker
        processes and served from the persistent cache; without one they
        run inline through :meth:`Measurer.measure_many`.  Results are
        identical in content and order either way.
        """
        measurer = Measurer(self.benchmark, self.gpu,
                            params=self.model_params)
        results = TuningResults(self.benchmark.name, self.gpu.name)
        eng = self._make_engine(engine, jobs, cache)
        objective = measurer.batch_objective(size, results=results,
                                             engine=eng)
        strategy = self.make_search(search, use_rule=use_rule, size=size,
                                    **search_kwargs)
        with obs.span(
            "tune",
            key=f"{self.benchmark.name}/{self.gpu.name}/{strategy.name}",
            args={"size": size, "strategy": strategy.name},
        ) as sp:
            sr = strategy.search(self.space, objective, budget=budget)
            sp.annotate(evaluations=sr.evaluations,
                        best_value=sr.best_value)
        return TuneOutcome(search=sr, results=results, measurer=measurer)

    def sweep(self, sizes=None, space: ParameterSpace | None = None,
              engine=None, jobs: int = 1, cache=None) -> TuningResults:
        """Exhaustively measure the whole space across input sizes,
        pooling measurements (the Fig. 4 / Table V data collection).

        ``jobs`` shards the sweep across worker processes and ``cache``
        backs it with the persistent store; results are identical to the
        serial path in content *and* order.
        """
        sizes = sizes if sizes is not None else self.benchmark.sizes
        space = space if space is not None else self.space
        results = TuningResults(self.benchmark.name, self.gpu.name)
        eng = self._make_engine(engine, jobs, cache)
        if eng is not None:
            for m in eng.sweep(self.benchmark, self.gpu, space, sizes,
                               params=self.model_params):
                results.add(m)
            return results
        measurer = Measurer(self.benchmark, self.gpu,
                            params=self.model_params)
        for n in sizes:
            for config in space:
                results.add(measurer.measure(config, n))
        return results
