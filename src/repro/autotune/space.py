"""Tuning parameter spaces (the paper's Table III feature space)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Parameter:
    """One tunable dimension: a name plus its finite value list."""

    name: str
    values: tuple

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r} has duplicate values")

    def __len__(self) -> int:
        return len(self.values)

    def index_of(self, value) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} is not a value of parameter {self.name!r}"
            ) from None


class ParameterSpace:
    """The cartesian product of tuning parameters.

    Configurations are plain dicts ``{name: value}``; the space also
    supports coordinate views (tuples of value indices) used by the lattice
    searches (simulated annealing, Nelder-Mead).
    """

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise ValueError("empty parameter space")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        self.parameters: tuple = tuple(parameters)
        self.by_name = {p.name: p for p in self.parameters}

    # -- basics ------------------------------------------------------------

    def __len__(self) -> int:
        n = 1
        for p in self.parameters:
            n *= len(p)
        return n

    def __iter__(self) -> Iterator[dict]:
        names = [p.name for p in self.parameters]
        for combo in itertools.product(*(p.values for p in self.parameters)):
            yield dict(zip(names, combo))

    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def shape(self) -> tuple:
        return tuple(len(p) for p in self.parameters)

    # -- coordinates ---------------------------------------------------------

    def config_at(self, coords: Sequence[int]) -> dict:
        if len(coords) != len(self.parameters):
            raise ValueError("coordinate arity mismatch")
        return {
            p.name: p.values[c % len(p)]
            for p, c in zip(self.parameters, coords)
        }

    def coords_of(self, config: dict) -> tuple:
        return tuple(
            p.index_of(config[p.name]) for p in self.parameters
        )

    def clip(self, coords: Sequence[int]) -> tuple:
        return tuple(
            min(max(int(c), 0), len(p) - 1)
            for p, c in zip(self.parameters, coords)
        )

    def random_config(self, rng) -> dict:
        return {
            p.name: p.values[int(rng.integers(len(p)))]
            for p in self.parameters
        }

    # -- restriction (what the static search module does) -------------------

    def restrict(self, name: str, allowed) -> "ParameterSpace":
        """A new space with parameter ``name`` limited to ``allowed`` values
        (order preserved; values absent from the parameter are ignored)."""
        if name not in self.by_name:
            raise KeyError(f"no parameter named {name!r}")
        allowed_set = set(allowed)
        newvals = tuple(
            v for v in self.by_name[name].values if v in allowed_set
        )
        if not newvals:
            raise ValueError(
                f"restriction removes every value of {name!r}"
            )
        return ParameterSpace([
            Parameter(p.name, newvals) if p.name == name else p
            for p in self.parameters
        ])

    def validate_config(self, config: dict) -> None:
        for p in self.parameters:
            if p.name not in config:
                raise ValueError(f"config missing parameter {p.name!r}")
            if config[p.name] not in p.values:
                raise ValueError(
                    f"config value {config[p.name]!r} not allowed for "
                    f"{p.name!r}"
                )


def default_space() -> ParameterSpace:
    """The paper's 5,120-variant space (Table III / Fig. 3).

    TC in 32..1024 step 32 (32 values), BC in 24..192 step 24 (8), UIF in
    1..5 (5), PL in {16, 48} (2), CFLAGS in {'', '-use_fast_math'} (2).
    """
    return ParameterSpace([
        Parameter("TC", tuple(range(32, 1025, 32))),
        Parameter("BC", tuple(range(24, 193, 24))),
        Parameter("UIF", tuple(range(1, 6))),
        Parameter("PL", (16, 48)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])
