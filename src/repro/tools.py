"""Command-line tools: the static analyzer as a release would ship it.

Subcommands mirror the workflow of the paper's Sec. III:

- ``analyze``    -- full static report for a benchmark on an architecture
  (occupancy, mixes, intensity, T*, rule threads, Eq. 6 cost);
- ``disasm``     -- the nvdisasm-equivalent instruction stream;
- ``occupancy``  -- the occupancy calculator for explicit (T, R, S) inputs;
- ``suggest``    -- Toolkit-style single launch suggestion vs the
  analyzer's T* range;
- ``tune``       -- run the autotuner with any search strategy.

Examples::

    python -m repro.tools analyze atax --arch kepler --size 256
    python -m repro.tools disasm ex14fj --arch fermi --unroll 2
    python -m repro.tools occupancy --arch maxwell -t 256 -r 32 -s 2048
    python -m repro.tools tune bicg --arch pascal --size 128 --search static
"""

from __future__ import annotations

import argparse
import sys

from repro.arch import get_gpu
from repro.autotune.tuner import Autotuner
from repro.codegen.compiler import CompileOptions, compile_module
from repro.core.analyzer import StaticAnalyzer
from repro.core.occupancy import occupancy
from repro.core.occupancy_api import max_potential_block_size
from repro.kernels import BENCHMARKS, get_benchmark


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("benchmark", choices=sorted(BENCHMARKS))
    p.add_argument("--arch", default="kepler",
                   help="GPU name or family (default: kepler)")


def cmd_analyze(args) -> int:
    bm = get_benchmark(args.benchmark)
    size = args.size or bm.sizes[-1]
    rep = StaticAnalyzer(get_gpu(args.arch)).analyze(
        list(bm.specs), bm.param_env(size), name=bm.name,
        unroll_factor=args.unroll, fast_math=args.fast_math,
    )
    print(rep.summary())
    print()
    print(rep.compile_log)
    if args.verbose:
        print("\npipeline utilization:")
        for unit, frac in sorted(rep.pipeline.items(),
                                 key=lambda kv: -kv[1]):
            print(f"  {unit:5s} {frac:7.1%}")
    return 0


def cmd_disasm(args) -> int:
    bm = get_benchmark(args.benchmark)
    module = compile_module(
        bm.name, list(bm.specs),
        CompileOptions(gpu=get_gpu(args.arch), unroll_factor=args.unroll,
                       fast_math=args.fast_math),
    )
    for ck in module:
        print(ck.disassembly())
        print()
    return 0


def cmd_occupancy(args) -> int:
    gpu = get_gpu(args.arch)
    r = occupancy(gpu, args.threads, args.registers, args.smem)
    print(f"{gpu.short()}")
    print(f"  {r}")
    print(f"  limits: warps={r.limits['warps']} "
          f"registers={r.limits['registers']} smem={r.limits['smem']}")
    return 0


def cmd_suggest(args) -> int:
    bm = get_benchmark(args.benchmark)
    gpu = get_gpu(args.arch)
    module = compile_module(bm.name, list(bm.specs),
                            CompileOptions(gpu=gpu))
    from repro.core.suggest import suggest_for_module

    s = suggest_for_module(module)
    api = max_potential_block_size(gpu, module.regs_per_thread,
                                   module.static_smem_bytes)
    print(f"analyzer T* range : {list(s.threads)}  (occ* {s.best_occupancy:g})")
    print(f"toolkit-style      : block={api.block_size} "
          f"min_grid={api.min_grid_size} (occ {api.occupancy:g})")
    return 0


def cmd_tune(args) -> int:
    bm = get_benchmark(args.benchmark)
    gpu = get_gpu(args.arch)
    size = args.size or bm.sizes[-1]
    tuner = Autotuner(bm, gpu)
    kwargs = {}
    if args.budget:
        kwargs["budget"] = args.budget
    out = tuner.tune(size=size, search=args.search,
                     use_rule=args.rule, **kwargs)
    print(f"best {out.best_seconds * 1e6:.1f} us at {out.best_config}")
    print(f"{out.search.evaluations} measurements, "
          f"{out.search.space_reduction:.1%} space removed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools", description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="static analysis report")
    _add_common(p)
    p.add_argument("--size", type=int, default=None)
    p.add_argument("--unroll", type=int, default=1)
    p.add_argument("--fast-math", action="store_true")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("disasm", help="disassembled instruction stream")
    _add_common(p)
    p.add_argument("--unroll", type=int, default=1)
    p.add_argument("--fast-math", action="store_true")
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser("occupancy", help="occupancy calculator")
    p.add_argument("--arch", default="kepler")
    p.add_argument("-t", "--threads", type=int, required=True)
    p.add_argument("-r", "--registers", type=int, default=0)
    p.add_argument("-s", "--smem", type=int, default=0)
    p.set_defaults(fn=cmd_occupancy)

    p = sub.add_parser("suggest", help="launch-config suggestions")
    _add_common(p)
    p.set_defaults(fn=cmd_suggest)

    p = sub.add_parser("tune", help="run the autotuner")
    _add_common(p)
    p.add_argument("--size", type=int, default=None)
    p.add_argument("--search", default="static",
                   help="exhaustive | random | annealing | genetic | "
                        "simplex | static")
    p.add_argument("--rule", action="store_true",
                   help="apply the intensity rule (static search)")
    p.add_argument("--budget", type=int, default=None)
    p.set_defaults(fn=cmd_tune)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
