"""Independent lockstep NumPy reference for generated fuzz programs.

This interpreter executes a :class:`~repro.fuzz.generator.FuzzProgram`
directly from the DSL AST -- it never sees the lowered PTX -- as one
statement-level vectorized machine over all ``T = tc * bc`` threads of
the launch at once:

- every local is a ``(T,)`` array, zero-filled on first (possibly
  partial) write and updated under the active-lane mask, exactly the
  emulator's register model;
- an ``If`` executes both arms under refined masks (``mask & cond`` /
  ``mask & ~cond``) -- whether the lowering predicates the arm or emits
  a real branch is a *counting* difference, invisible in memory;
- a sequential ``For`` evaluates its bound **once** at entry and then
  iterates while any lane remains active, incrementing the loop
  variable only for lanes that executed the body (the emulator's
  entry-guard/latch structure);
- the grid-stride loop becomes round-major execution: round ``r``
  handles ``i = g + r*T`` under the mask ``i < N``.  Round-major equals
  the emulator's thread-major order because the generator's invariants
  make cross-thread effects order-free (own-slot stores, exact integral
  atomics) or barrier-fenced (shared tiles);
- shared arrays are ``(bc, size)`` planes persisting across rounds,
  indexed by each thread's block row.

Arithmetic must be *bit-identical* to the lowering + emulator pipeline,
so the interpreter reproduces their choices: C-truncating integer
division (independently formulated through float64 ``trunc``, exact for
s32), ``a - trunc(a/b)*b`` for ``%``, int32 wraparound under
``errstate(ignore)``, and the non-fast-math float division's Newton
sequence (reciprocal, one refinement FMA pair, quotient, remainder
correction).  Everything else in the generator's grammar is a plain
same-dtype elementwise NumPy op on both sides by construction.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.ast_nodes import (
    Assign,
    AtomicAdd,
    BinOp,
    BoolOp,
    Cast,
    Cmp,
    Expr,
    FloatConst,
    For,
    If,
    IntConst,
    Load,
    NotOp,
    Store,
    Sync,
    UnaryOp,
    VarRef,
)
from repro.ptx.isa import DType

_NP = {DType.S32: np.int32, DType.S64: np.int64,
       DType.F32: np.float32, DType.F64: np.float64}

_LOOP_CAP = 1_000_000
"""Hard iteration cap: a generated bound is <= 8, so hitting this means
the generator or shrinker produced a runaway loop -- fail loudly."""


class ReferenceError(Exception):
    """The program left the reference-executable fragment."""


def _trunc_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C-style truncating division, zero divisor yields quotient 0.

    Formulated independently of the emulator's helper (float64 division
    plus ``trunc``, exact over the s32 range) so the two sides of the
    differential check do not share the code under test.
    """
    bz = b == 0
    safe = np.where(bz, 1, b)
    q = np.trunc(a.astype(np.float64) / safe.astype(np.float64))
    return np.where(bz, 0, q).astype(a.dtype)


def _f32_newton_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The lowering's non-fast-math f32 division, step for step."""
    rcp = (1.0 / b).astype(np.float32)
    err = (-b) * rcp + np.float32(1.0)
    rcp2 = rcp * err + rcp
    q = a * rcp2
    rem = (-q) * b + a
    return rem * rcp2 + q


class _Machine:
    def __init__(self, program):
        self.tc = program.tc
        self.bc = program.bc
        self.threads = program.tc * program.bc
        self.params: dict = {}
        self.mem: dict = {}
        for name, v in program.inputs.items():
            if isinstance(v, np.ndarray):
                self.mem[name] = v.copy()
            else:
                self.params[name] = int(v)
        self.smem = {
            name: np.zeros((self.bc, count), _NP[dt])
            for name, count, dt in program.spec.smem_arrays
        }
        g = np.arange(self.threads, dtype=np.int64)
        self.block_row = (g // self.tc).astype(np.int64)
        self.gtid = g.astype(np.int32)
        self.locals: dict = {}

    # -- expressions ---------------------------------------------------

    def eval(self, e: Expr, mask: np.ndarray) -> np.ndarray:
        if isinstance(e, IntConst):
            return np.full(self.threads, e.value, _NP[e.dtype])
        if isinstance(e, FloatConst):
            return np.full(self.threads, e.value, _NP[e.dtype])
        if isinstance(e, VarRef):
            if e.name in self.locals:
                return self.locals[e.name]
            if e.name in self.params:
                return np.full(self.threads, self.params[e.name],
                               _NP[e.dtype])
            raise ReferenceError(f"unbound variable {e.name!r}")
        if isinstance(e, Load):
            return self._load(e, mask)
        if isinstance(e, BinOp):
            with np.errstate(all="ignore"):
                return self._binop(e, mask)
        if isinstance(e, UnaryOp):
            v = self.eval(e.operand, mask)
            with np.errstate(all="ignore"):
                return np.abs(v) if e.op == "abs" else -v
        if isinstance(e, Cast):
            v = self.eval(e.operand, mask)
            with np.errstate(all="ignore"):
                return v.astype(_NP[e.to])
        if isinstance(e, Cmp):
            lv = self.eval(e.left, mask)
            rv = self.eval(e.right, mask)
            # the lowering coerces both comparands to a joint work type
            # before SETP; mirror it (a no-op for same-dtype operands)
            if lv.dtype.kind == "f" or rv.dtype.kind == "f":
                joint = (np.float64 if np.float64 in (lv.dtype, rv.dtype)
                         else np.float32)
            else:
                joint = (np.int64 if np.int64 in (lv.dtype, rv.dtype)
                         else np.int32)
            lv = lv.astype(joint)
            rv = rv.astype(joint)
            with np.errstate(invalid="ignore"):
                return {
                    "lt": lv < rv, "le": lv <= rv, "gt": lv > rv,
                    "ge": lv >= rv, "eq": lv == rv, "ne": lv != rv,
                }[e.op]
        if isinstance(e, BoolOp):
            lv = self.eval(e.left, mask)
            rv = self.eval(e.right, mask)
            return (lv & rv) if e.op == "and" else (lv | rv)
        if isinstance(e, NotOp):
            return ~self.eval(e.operand, mask)
        raise ReferenceError(f"cannot evaluate {type(e).__name__}")

    def _binop(self, e: BinOp, mask: np.ndarray) -> np.ndarray:
        a = self.eval(e.left, mask)
        b = self.eval(e.right, mask)
        op = e.op
        if op == "+":
            # the lowering fuses c + a*b into FMA(a, b, c), which the
            # emulator evaluates as (a*b) + c -- operand order is
            # observable in NaN payload propagation, so mirror it when
            # only the right side is a product (left side wins the
            # fusion otherwise, matching the written order)
            if (isinstance(e.right, BinOp) and e.right.op == "*"
                    and not (isinstance(e.left, BinOp)
                             and e.left.op == "*")):
                return b + a
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "min":
            return np.minimum(a, b)
        if op == "max":
            return np.maximum(a, b)
        if op == "/":
            if e.dtype.is_float:
                return _f32_newton_div(a, b)
            return _trunc_div(a, b)
        if op == "//":
            if e.dtype.is_float:
                raise ReferenceError("float // is outside the fragment")
            return _trunc_div(a, b)
        if op == "%":
            if e.dtype.is_float:
                raise ReferenceError("float % is outside the fragment")
            return a - _trunc_div(a, b) * b
        raise ReferenceError(f"unknown binop {op!r}")

    def _indices(self, e: Expr, mask: np.ndarray) -> np.ndarray:
        idx = self.eval(e, mask).astype(np.int64)
        # inactive lanes may hold stale/out-of-range indices; they are
        # never observed, so pin them to a safe slot
        return np.where(mask, idx, 0)

    def _load(self, e: Load, mask: np.ndarray) -> np.ndarray:
        idx = self._indices(e.index, mask)
        if e.array in self.smem:
            v = self.smem[e.array][self.block_row, idx].copy()
        else:
            v = self.mem[e.array][idx].copy()
        v[~mask] = 0
        return v

    # -- statements ----------------------------------------------------

    def _write_local(self, name: str, value: np.ndarray,
                     mask: np.ndarray) -> None:
        if name not in self.locals:
            self.locals[name] = np.zeros(self.threads, value.dtype)
        reg = self.locals[name]
        reg[mask] = value.astype(reg.dtype)[mask]

    def run_block(self, stmts, mask: np.ndarray) -> None:
        for s in stmts:
            self.exec_stmt(s, mask)

    def exec_stmt(self, s, mask: np.ndarray) -> None:
        if isinstance(s, Assign):
            self._write_local(s.var, self.eval(s.expr, mask), mask)
            return
        if isinstance(s, Store):
            idx = self._indices(s.index, mask)
            val = self.eval(s.value, mask)
            if s.array in self.smem:
                plane = self.smem[s.array]
                plane[self.block_row[mask], idx[mask]] = (
                    val.astype(plane.dtype)[mask]
                )
            else:
                arr = self.mem[s.array]
                arr[idx[mask]] = val.astype(arr.dtype)[mask]
            return
        if isinstance(s, AtomicAdd):
            idx = self._indices(s.index, mask)
            val = self.eval(s.value, mask)
            if s.array in self.smem:
                plane = self.smem[s.array]
                np.add.at(plane, (self.block_row[mask], idx[mask]),
                          val.astype(plane.dtype)[mask])
            else:
                arr = self.mem[s.array]
                np.add.at(arr, idx[mask], val.astype(arr.dtype)[mask])
            return
        if isinstance(s, If):
            cond = self.eval(s.cond, mask).astype(bool)
            self.run_block(s.then_body, mask & cond)
            self.run_block(s.else_body, mask & ~cond)
            return
        if isinstance(s, For):
            if s.parallel:
                raise ReferenceError("nested parallel loop")
            self._run_seq_loop(s, mask)
            return
        if isinstance(s, Sync):
            # a pure sequence point here: the generator's barrier
            # invariants (uniform trip counts, own-slot stores) make the
            # lockstep order a legal schedule
            return
        raise ReferenceError(f"cannot execute {type(s).__name__}")

    def _run_seq_loop(self, s: For, mask: np.ndarray) -> None:
        lo = self.eval(s.lower, mask).astype(np.int32)
        hi = self.eval(s.upper, mask).astype(np.int32)  # bound read once
        self._write_local(s.var, lo, mask)
        iv = self.locals[s.var]
        active = mask & (iv < hi)
        spins = 0
        while active.any():
            self.run_block(s.body, active)
            iv[active] += np.int32(s.step)
            active = active & (iv < hi)
            spins += 1
            if spins > _LOOP_CAP:
                raise ReferenceError(f"loop {s.var} exceeded {_LOOP_CAP}")

    # -- driver --------------------------------------------------------

    def run(self, spec) -> None:
        tops = list(spec.body)
        if len(tops) != 1 or not isinstance(tops[0], For) \
                or not tops[0].parallel:
            raise ReferenceError(
                "fuzz programs are a single top-level parallel loop"
            )
        ploop = tops[0]
        n = np.int32(self.params[ploop.upper.name]) \
            if isinstance(ploop.upper, VarRef) else None
        if n is None:
            raise ReferenceError("parallel bound must be a parameter")
        stride = np.int32(self.threads)
        r = 0
        while True:
            with np.errstate(all="ignore"):
                i_vals = (self.gtid + np.int32(r) * stride).astype(np.int32)
            mask = i_vals < n
            if not mask.any():
                break
            self._write_local(ploop.var, i_vals, np.ones_like(mask))
            self.run_block(ploop.body, mask)
            r += 1


def reference_run(program) -> dict:
    """Execute ``program`` on the reference machine; returns the final
    global memory for every array, outputs included."""
    m = _Machine(program)
    m.run(program.spec)
    return m.mem
