"""Seeded random DSL-program generator for the differential fuzzer.

Every program drawn here must satisfy three executors at once -- the
lockstep NumPy reference (:mod:`repro.fuzz.reference`), the scalar
per-warp emulator, and the vectorized grid-level path -- *bit
identically*.  The grammar is therefore constrained to the part of the
DSL where that equality is a theorem rather than a hope:

- **float arithmetic** is restricted to operations every executor
  evaluates as the same elementwise NumPy expression (``+ - * min max``,
  negation, ``abs``, and the lowering's exact Newton-refined ``/``
  sequence).  No transcendentals: their lowering is a rational
  approximation whose mirror would just duplicate the lowering.
- **locals** keep a single dtype for life and receive an unconditional
  first assignment before any conditional use -- a register first
  written inside a branch arm the whole warp skips would be *undefined*
  on a later read (a real EmulationError, not a miscompare).
- **indices** stay provably in-bounds for active lanes: ``i``,
  ``(i + c) % N``, ``(i + j) % N``, and small loop counters.
- **global stores** target the thread's own ``out[i]`` slot only, and
  loads never touch written arrays, so thread order is unobservable.
- **atomicAdd contributions are integral-valued f32** (exact in float
  addition at any order, so contention order is unobservable too); the
  key expressions steer contention from all-threads-one-counter to
  nearly-conflict-free.
- **barrier programs** launch with ``N = tc*bc*rounds`` so every thread
  runs the same trip count and hits each ``bar.sync`` in lockstep;
  shared-memory traffic is structured store-own-slot / sync / read-any
  / sync blocks at the top level of the grid loop.

Divergence, data-dependent trip counts, masked final-round tails,
nested control flow, and atomic contention -- the shapes the irregular
corpus members exercise -- all remain in the grammar; only the
order-observable and undefined-behaviour corners are fenced off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codegen.ast_nodes import (
    ArrayParam,
    Assign,
    AtomicAdd,
    BinOp,
    Cast,
    Cmp,
    FloatConst,
    For,
    If,
    IntConst,
    KernelSpec,
    Load,
    NotOp,
    ScalarParam,
    Store,
    Sync,
    UnaryOp,
    VarRef,
)
from repro.ptx.isa import DType

ACC_BINS = 16
"""Length of the atomic accumulator array (key expressions are reduced
mod this)."""

_CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")


@dataclass
class FuzzProgram:
    """One generated differential test case: a kernel plus its launch
    and concrete inputs.  ``output_names`` lists the arrays whose final
    memory the three executors must agree on bit-for-bit."""

    spec: KernelSpec
    tc: int
    bc: int
    inputs: dict
    output_names: tuple
    seed: int | None = None
    note: str = ""

    @property
    def n(self) -> int:
        return int(self.inputs["N"])

    def fresh_inputs(self) -> dict:
        """A deep copy safe to hand to a (mutating) executor."""
        return {
            k: v.copy() if isinstance(v, np.ndarray) else v
            for k, v in self.inputs.items()
        }


@dataclass
class _Scope:
    """Mutable generation state: which names are live and typed how."""

    rng: np.random.Generator
    n_param: str
    float_locals: list = field(default_factory=list)
    int_locals: list = field(default_factory=list)
    loop_vars: list = field(default_factory=list)
    float_arrays: list = field(default_factory=list)
    int_arrays: list = field(default_factory=list)
    depth: int = 0


def _ivar(name: str) -> VarRef:
    return VarRef(name, DType.S32)


def _fvar(name: str) -> VarRef:
    return VarRef(name, DType.F32)


def _index_expr(sc: _Scope) -> "BinOp | VarRef":
    """An index provably in ``[0, N)`` for active lanes."""
    i = _ivar("i")
    n = _ivar(sc.n_param)
    pick = sc.rng.integers(0, 3 if sc.loop_vars else 2)
    if pick == 0:
        return i
    if pick == 1:
        c = int(sc.rng.integers(0, 9))
        return BinOp("%", BinOp("+", i, IntConst(c)), n)
    j = _ivar(str(sc.rng.choice(sc.loop_vars)))
    return BinOp("%", BinOp("+", i, j), n)


def _int_leaf(sc: _Scope):
    choices = ["const", "i"]
    if sc.int_locals:
        choices += ["local"] * 2
    if sc.loop_vars:
        choices.append("loop")
    if sc.int_arrays:
        choices.append("load")
    kind = sc.rng.choice(choices)
    if kind == "const":
        return IntConst(int(sc.rng.integers(-3, 9)))
    if kind == "i":
        return _ivar("i")
    if kind == "local":
        return _ivar(str(sc.rng.choice(sc.int_locals)))
    if kind == "loop":
        return _ivar(str(sc.rng.choice(sc.loop_vars)))
    arr = str(sc.rng.choice(sc.int_arrays))
    return Load(arr, _index_expr(sc), DType.S32)


def _float_leaf(sc: _Scope):
    choices = ["const", "local", "local", "load", "cast"]
    kind = sc.rng.choice(choices)
    if kind == "const" or (kind == "local" and not sc.float_locals):
        return FloatConst(round(float(sc.rng.uniform(-2.0, 2.0)), 3))
    if kind == "local":
        return _fvar(str(sc.rng.choice(sc.float_locals)))
    if kind == "load":
        arr = str(sc.rng.choice(sc.float_arrays))
        return Load(arr, _index_expr(sc), DType.F32)
    return Cast(DType.F32, _int_expr(sc, 1))


def _int_expr(sc: _Scope, depth: int):
    if depth <= 0:
        return _int_leaf(sc)
    op = sc.rng.choice(["+", "-", "*", "min", "max", "//", "%", "neg",
                        "abs", "shl"])
    if op in ("neg", "abs"):
        return UnaryOp("-" if op == "neg" else "abs",
                       _int_expr(sc, depth - 1))
    if op in ("//", "%"):
        # divisor: positive constant, so C-truncating semantics and the
        # a - trunc(a/b)*b lowering stay exactly mirrorable
        return BinOp(op, _int_expr(sc, depth - 1),
                     IntConst(int(sc.rng.integers(1, 8))))
    if op == "shl":
        # int multiply by a power of two lowers to SHL
        return BinOp("*", _int_expr(sc, depth - 1),
                     IntConst(int(2 ** sc.rng.integers(1, 4))))
    return BinOp(op, _int_expr(sc, depth - 1), _int_expr(sc, depth - 1))


def _float_expr(sc: _Scope, depth: int, allow_div: bool = True):
    if depth <= 0:
        return _float_leaf(sc)
    ops = ["+", "+", "-", "*", "*", "min", "max", "neg", "abs"]
    if allow_div:
        ops.append("/")
    op = sc.rng.choice(ops)
    if op in ("neg", "abs"):
        return UnaryOp("-" if op == "neg" else "abs",
                       _float_expr(sc, depth - 1, allow_div))
    return BinOp(op, _float_expr(sc, depth - 1, allow_div),
                 _float_expr(sc, depth - 1, allow_div))


def _cond(sc: _Scope):
    if sc.rng.random() < 0.6 or not sc.float_locals:
        e = Cmp(str(sc.rng.choice(_CMP_OPS)), _int_expr(sc, 1),
                _int_expr(sc, 1))
    else:
        e = Cmp(str(sc.rng.choice(_CMP_OPS)), _float_expr(sc, 1),
                _float_expr(sc, 1))
    if sc.rng.random() < 0.15:
        e = NotOp(e)
    return e


def _assign(sc: _Scope) -> Assign:
    if sc.int_locals and sc.rng.random() < 0.35:
        v = str(sc.rng.choice(sc.int_locals))
        return Assign(v, _int_expr(sc, int(sc.rng.integers(1, 3))))
    v = str(sc.rng.choice(sc.float_locals))
    return Assign(v, _float_expr(sc, int(sc.rng.integers(1, 4))))


def _branch(sc: _Scope, nest: int) -> If:
    then_body = [_assign(sc) for _ in range(int(sc.rng.integers(1, 4)))]
    if nest > 0 and sc.rng.random() < 0.3:
        then_body.append(_branch(sc, nest - 1))
    else_body = ()
    if sc.rng.random() < 0.5:
        else_body = tuple(
            _assign(sc) for _ in range(int(sc.rng.integers(1, 3)))
        )
    return If(_cond(sc), tuple(then_body), else_body)


def _loop(sc: _Scope, var: str, nest: int) -> For:
    """A sequential loop; the bound is often data-dependent but always
    provably small (reduced mod a constant <= 8)."""
    kind = sc.rng.integers(0, 3)
    if kind == 0:
        upper = IntConst(int(sc.rng.integers(1, 7)))
    elif kind == 1:
        mod = int(sc.rng.integers(2, 9))
        upper = BinOp("%", _ivar("i"), IntConst(mod))
    else:
        mod = int(sc.rng.integers(2, 9))
        upper = BinOp(
            "%", UnaryOp("abs", _int_expr(sc, 1)), IntConst(mod)
        )
    sc.loop_vars.append(var)
    body = [_assign(sc) for _ in range(int(sc.rng.integers(1, 3)))]
    if sc.rng.random() < 0.4:
        body.append(_branch(sc, 0))
    if nest > 0 and sc.rng.random() < 0.25:
        body.append(_loop(sc, var + "j", nest - 1))
    sc.loop_vars.pop()
    return For(var, IntConst(0), upper, tuple(body))


def _atomic(sc: _Scope) -> AtomicAdd:
    """Integral-valued f32 contribution; the key picks the contention
    profile (one hot counter / striped / data-dependent skew)."""
    kind = sc.rng.integers(0, 3)
    if kind == 0:
        key = IntConst(int(sc.rng.integers(0, ACC_BINS)))
    elif kind == 1:
        key = BinOp("%", _ivar("i"), IntConst(ACC_BINS))
    else:
        arr = str(sc.rng.choice(sc.int_arrays))
        key = BinOp("%", Load(arr, _index_expr(sc), DType.S32),
                    IntConst(ACC_BINS))
    vkind = sc.rng.integers(0, 3)
    if vkind == 0:
        val = FloatConst(float(sc.rng.integers(1, 4)))
    elif vkind == 1:
        val = Cast(DType.F32, BinOp("%", _ivar("i"),
                                    IntConst(int(sc.rng.integers(2, 5)))))
    else:
        val = Cast(
            DType.F32,
            BinOp("%", UnaryOp("abs", _int_expr(sc, 1)), IntConst(4)),
        )
    return AtomicAdd("acc", key, val)


def _smem_block(sc: _Scope, smem: str, tc: int) -> list:
    """store-own-slot / sync / combine-a-neighbour / sync.

    The slot is ``i % tc``: with ``N`` a multiple of ``tc * bc``, that
    is exactly the thread's block-local id every grid-stride round, so
    slots are conflict-free within a block and each round's stores are
    fenced from its reads by the two barriers.
    """
    lane = BinOp("%", _ivar("i"), IntConst(tc))
    src = str(sc.rng.choice(sc.float_locals))
    dst = str(sc.rng.choice(sc.float_locals))
    shift = int(sc.rng.integers(1, tc))
    neighbour = BinOp("%", BinOp("+", lane, IntConst(shift)),
                      IntConst(tc))
    return [
        Store(smem, lane, _fvar(src)),
        Sync(),
        Assign(dst, BinOp(str(sc.rng.choice(["+", "min", "max"])),
                          _fvar(dst), Load(smem, neighbour, DType.F32))),
        Sync(),
    ]


def generate_program(seed: int) -> FuzzProgram:
    """Draw one deterministic program from ``seed``."""
    rng = np.random.default_rng(seed)
    tc = int(rng.choice([32, 64]))
    bc = int(rng.choice([1, 2, 3]))
    threads = tc * bc
    barrier = rng.random() < 0.25
    if barrier:
        rounds = int(rng.choice([1, 2]))
        n = threads * rounds
    else:
        n = int(rng.integers(max(8, threads // 2), 3 * threads))

    sc = _Scope(rng=rng, n_param="N")
    sc.float_arrays = ["a", "b"]
    sc.int_arrays = ["k"]
    sc.float_locals = ["f0", "f1"] + (["f2"] if rng.random() < 0.5 else [])
    sc.int_locals = ["q0"] + (["q1"] if rng.random() < 0.4 else [])

    use_atomics = rng.random() < 0.5

    inputs = {
        "N": n,
        "a": rng.standard_normal(n).astype(np.float32),
        "b": rng.standard_normal(n).astype(np.float32),
        "k": rng.integers(0, 8, n).astype(np.int32),
        "out": np.zeros(n, np.float32),
    }
    output_names = ["out"]
    if use_atomics:
        inputs["acc"] = np.zeros(ACC_BINS, np.float32)
        output_names.append("acc")

    # unconditional init block: every local is defined before any
    # conditional use (see the undefined-register invariant above)
    body: list = []
    for idx, name in enumerate(sc.float_locals):
        arr = sc.float_arrays[idx % len(sc.float_arrays)]
        body.append(Assign(name, Load(arr, _index_expr(sc), DType.F32)))
    for idx, name in enumerate(sc.int_locals):
        if idx == 0:
            body.append(Assign(name, Load("k", _ivar("i"), DType.S32)))
        else:
            body.append(
                Assign(name, BinOp("%", _ivar("i"),
                                   IntConst(int(rng.integers(2, 9)))))
            )

    n_stmts = int(rng.integers(2, 7))
    loop_serial = 0
    for _ in range(n_stmts):
        kinds = ["assign", "branch", "branch", "loop"]
        if use_atomics:
            kinds.append("atomic")
        if barrier:
            kinds.append("smem")
        kind = rng.choice(kinds)
        if kind == "assign":
            body.append(_assign(sc))
        elif kind == "branch":
            body.append(_branch(sc, nest=1))
        elif kind == "loop":
            body.append(_loop(sc, f"t{loop_serial}", nest=1))
            loop_serial += 1
        elif kind == "atomic":
            body.append(_atomic(sc))
        else:
            body.extend(_smem_block(sc, "stile", tc))

    body.append(Store("out", _ivar("i"),
                      _fvar(str(rng.choice(sc.float_locals)))))

    params = [ScalarParam("N", DType.S32),
              ArrayParam("a", DType.F32), ArrayParam("b", DType.F32),
              ArrayParam("k", DType.S32), ArrayParam("out", DType.F32)]
    if use_atomics:
        params.append(ArrayParam("acc", DType.F32))
    smem_arrays = ((("stile", tc, DType.F32),) if barrier else ())

    spec = KernelSpec(
        name=f"fuzz{seed}",
        params=tuple(params),
        body=(For("i", IntConst(0), _ivar("N"), tuple(body),
                  parallel=True),),
        smem_arrays=smem_arrays,
    )
    return FuzzProgram(
        spec=spec, tc=tc, bc=bc, inputs=inputs,
        output_names=tuple(output_names), seed=seed,
        note=("barrier" if barrier else "strided"),
    )
