"""Three-way differential execution of generated programs.

Every program runs on the NumPy reference interpreter, the scalar
per-warp emulator, and the vectorized grid-level emulator.  The check
is *bitwise*: output memory across all three, and the full counter /
divergence-statistics surface between the two emulator paths (the
reference deliberately models memory only -- instruction counting is
exactly what the two emulator paths must agree on with each other).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.arch import K20
from repro.codegen.compiler import CompileOptions, compile_module
from repro.fuzz.generator import FuzzProgram, generate_program
from repro.fuzz.reference import reference_run
from repro.sim.emulator import run_benchmark_emulated

BUDGET_ENV = "REPRO_FUZZ_BUDGET"
DEFAULT_BUDGET = 100

COUNTER_FIELDS = (
    "thread_counts", "warp_issues", "reg_ops", "branch_count",
    "divergent_branches", "partial_issues", "total_issues",
)
"""The emulator-result surface compared between the two paths (memory
is compared separately, bitwise)."""


@dataclass
class Mismatch:
    """One differential failure, attached to the offending program."""

    kind: str
    detail: str
    program: FuzzProgram

    def __str__(self):
        head = f"[seed={self.program.seed}] {self.kind}: {self.detail}"
        return f"{head}\n{self.program.spec}"


@dataclass
class CampaignResult:
    programs: int
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return f"{self.programs} programs, no mismatches"
        kinds = sorted({m.kind for m in self.failures})
        seeds = sorted({m.program.seed for m in self.failures})
        return (f"{len(self.failures)} mismatches over {self.programs} "
                f"programs (kinds: {', '.join(kinds)}; seeds: {seeds})")


def fuzz_budget(default: int = DEFAULT_BUDGET) -> int:
    """Programs per campaign; ``REPRO_FUZZ_BUDGET`` overrides (CI's
    nightly schedule raises it 10x)."""
    return int(os.environ.get(BUDGET_ENV, default))


def _emulate(program: FuzzProgram, mode: str):
    module = compile_module(
        program.spec.name, [program.spec], CompileOptions(gpu=K20)
    )
    return run_benchmark_emulated(
        module, program.fresh_inputs(), tc=program.tc, bc=program.bc,
        mode=mode,
    )


def check_program(program: FuzzProgram) -> Mismatch | None:
    """Run the three executors; ``None`` means full agreement."""
    try:
        outs_s, res_s = _emulate(program, "scalar")
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return Mismatch("scalar-error", f"{type(exc).__name__}: {exc}",
                        program)
    try:
        outs_v, res_v = _emulate(program, "vector")
    except Exception as exc:  # noqa: BLE001
        return Mismatch("vector-error", f"{type(exc).__name__}: {exc}",
                        program)
    try:
        ref_mem = reference_run(program)
    except Exception as exc:  # noqa: BLE001
        return Mismatch("reference-error",
                        f"{type(exc).__name__}: {exc}", program)

    for f in COUNTER_FIELDS:
        sv, vv = getattr(res_s, f), getattr(res_v, f)
        if sv != vv:
            return Mismatch(
                "counter", f"{f}: scalar={sv!r} vector={vv!r}", program
            )
    if res_s != res_v:
        return Mismatch("result", "EmulationResult fields differ",
                        program)

    for name in program.output_names:
        s, v = outs_s[name], outs_v[name]
        if s.tobytes() != v.tobytes():
            return Mismatch(
                "memory:scalar-vs-vector",
                f"{name}: {_first_diff(s, v)}", program,
            )
        r = ref_mem[name]
        if s.tobytes() != r.tobytes():
            return Mismatch(
                "memory:emulator-vs-reference",
                f"{name}: {_first_diff(s, r)}", program,
            )
    return None


def _first_diff(a: np.ndarray, b: np.ndarray) -> str:
    if a.shape != b.shape or a.dtype != b.dtype:
        return f"shape/dtype {a.shape}/{a.dtype} vs {b.shape}/{b.dtype}"
    diff = np.flatnonzero(
        a.view(np.uint8).reshape(a.size, -1)
        != b.view(np.uint8).reshape(b.size, -1)
    )
    if diff.size == 0:
        return "identical?"
    elem = int(diff[0]) // max(a.itemsize, 1)
    return (f"{np.count_nonzero(a != b) or diff.size} elems differ, "
            f"first at [{elem}]: {a.flat[elem]!r} vs {b.flat[elem]!r}")


def analysis_context(program: FuzzProgram):
    """A :class:`~repro.analyze.values.LaunchContext` for ``program``,
    built the same way the lint entry point builds one for a registered
    benchmark: scalar inputs become parameter values, array inputs
    declare their byte extents."""
    from repro.analyze.values import LaunchContext

    params: dict = {}
    extents: dict = {}
    for k, v in program.inputs.items():
        if isinstance(v, np.ndarray):
            extents[k] = v.nbytes
        else:
            params[k] = int(v)
    return LaunchContext(tc=program.tc, bc=program.bc, params=params,
                         extents=extents)


def crossval_program(program: FuzzProgram) -> Mismatch | None:
    """Static analyzer verdicts vs. the dynamic oracles, one program.

    The static checkers over-approximate, so only the *soundness*
    direction is a failure:

    - the happens-before sanitizer observes a shared-memory race but the
      analyzer reported the program ``smem-race``-free;
    - the emulator raises its divergent ``bar.sync`` error but the
      analyzer reported no ``divergent-barrier``;
    - ``uninit-read`` / ``out-of-bounds`` -- which only report *provable*
      violations -- fire on a program that executes cleanly;
    - the analyzer itself crashes.
    """
    from repro.analyze import analyze_kernel
    from repro.sim.emulator import EmulationError, SmemSanitizer

    module = compile_module(
        program.spec.name, [program.spec], CompileOptions(gpu=K20)
    )
    ctx = analysis_context(program)
    try:
        checks: set[str] = set()
        for ck in module:
            report = analyze_kernel(ck.ir, ctx)
            checks.update(d.check for d in report.diagnostics)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return Mismatch("analyze-error", f"{type(exc).__name__}: {exc}",
                        program)

    sanitizer = SmemSanitizer()
    divergent_bar = False
    try:
        run_benchmark_emulated(
            module, program.fresh_inputs(), tc=program.tc, bc=program.bc,
            mode="scalar", sanitizer=sanitizer,
        )
    except EmulationError as exc:
        if "divergent bar.sync" not in str(exc):
            return Mismatch("sanitizer-error",
                            f"{type(exc).__name__}: {exc}", program)
        divergent_bar = True
    except Exception as exc:  # noqa: BLE001
        return Mismatch("sanitizer-error", f"{type(exc).__name__}: {exc}",
                        program)

    if sanitizer.races and "smem-race" not in checks:
        return Mismatch(
            "analyze-unsound-race",
            f"sanitizer saw {len(sanitizer.races)} race(s), first: "
            f"{sanitizer.races[0]}; analyzer reported none",
            program,
        )
    if divergent_bar and "divergent-barrier" not in checks:
        return Mismatch(
            "analyze-unsound-divbar",
            "runtime divergent bar.sync without a static "
            "divergent-barrier diagnostic",
            program,
        )
    if not divergent_bar:
        for check in ("uninit-read", "out-of-bounds"):
            if check in checks:
                return Mismatch(
                    "analyze-false-positive",
                    f"{check} reported on a program that executes "
                    f"cleanly",
                    program,
                )
    return None


def run_crossval_campaign(
    budget: int | None = None,
    base_seed: int = 0,
    corpus_dir: str | None = None,
    do_shrink: bool = True,
    max_failures: int = 5,
) -> CampaignResult:
    """Cross-validate the static analyzer against the dynamic oracles
    over ``budget`` generated programs (:func:`crossval_program` per
    program; shrinking and corpus dumping as in
    :func:`run_fuzz_campaign`)."""
    from repro.fuzz.serialize import dump_program
    from repro.fuzz.shrink import shrink_program

    budget = fuzz_budget() if budget is None else budget
    result = CampaignResult(programs=0)
    for seed in range(base_seed, base_seed + budget):
        program = generate_program(seed)
        result.programs += 1
        mismatch = crossval_program(program)
        if mismatch is None:
            continue
        if do_shrink:
            shrunk = shrink_program(program, crossval_program)
            mismatch = crossval_program(shrunk) or mismatch
            mismatch.program = shrunk
        if corpus_dir:
            path = os.path.join(corpus_dir, f"crossval_seed{seed}.json")
            dump_program(mismatch.program, path, note=mismatch.kind)
        result.failures.append(mismatch)
        if len(result.failures) >= max_failures:
            break
    return result


def run_fuzz_campaign(
    budget: int | None = None,
    base_seed: int = 0,
    corpus_dir: str | None = None,
    do_shrink: bool = True,
    max_failures: int = 5,
) -> CampaignResult:
    """Generate and differentially check ``budget`` programs.

    Failures are shrunk to minimal reproducers and, when ``corpus_dir``
    is given, dumped there as replayable JSON (the CI nightly uploads
    that directory as an artifact).  Stops early after ``max_failures``
    distinct failures -- one campaign run reporting five shrunk
    reproducers beats a thousand copies of the same defect.
    """
    from repro.fuzz.serialize import dump_program
    from repro.fuzz.shrink import shrink_program

    budget = fuzz_budget() if budget is None else budget
    result = CampaignResult(programs=0)
    for seed in range(base_seed, base_seed + budget):
        program = generate_program(seed)
        result.programs += 1
        mismatch = check_program(program)
        if mismatch is None:
            continue
        if do_shrink:
            shrunk = shrink_program(program, check_program)
            mismatch = check_program(shrunk) or mismatch
            mismatch.program = shrunk
        if corpus_dir:
            path = os.path.join(corpus_dir, f"fuzz_seed{seed}.json")
            dump_program(mismatch.program, path, note=mismatch.kind)
        result.failures.append(mismatch)
        if len(result.failures) >= max_failures:
            break
    return result
