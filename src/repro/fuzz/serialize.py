"""JSON (de)serialization of fuzz programs.

A reproducer file is self-contained: the kernel AST, the launch shape,
and the concrete input arrays, so a failure found by a nightly campaign
replays in a unit test with zero regeneration logic.  The encoding is a
plain tagged tree (``{"t": "BinOp", ...}``) with dtypes by their ISA
value string and arrays inlined as lists -- minimized programs are tiny,
so readability beats compactness.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.codegen.ast_nodes import (
    ArrayParam,
    Assign,
    AtomicAdd,
    BinOp,
    BoolOp,
    Cast,
    Cmp,
    FloatConst,
    For,
    If,
    IntConst,
    KernelSpec,
    Load,
    NotOp,
    ScalarParam,
    Store,
    Sync,
    UnaryOp,
    VarRef,
)
from repro.fuzz.generator import FuzzProgram
from repro.ptx.isa import DType

SCHEMA = 1


def _enc(node):
    t = type(node).__name__
    if isinstance(node, IntConst):
        return {"t": t, "value": node.value, "dtype": node.dtype.value}
    if isinstance(node, FloatConst):
        return {"t": t, "value": node.value, "dtype": node.dtype.value}
    if isinstance(node, VarRef):
        return {"t": t, "name": node.name, "dtype": node.dtype.value}
    if isinstance(node, (BinOp, Cmp, BoolOp)):
        return {"t": t, "op": node.op, "left": _enc(node.left),
                "right": _enc(node.right)}
    if isinstance(node, UnaryOp):
        return {"t": t, "op": node.op, "operand": _enc(node.operand)}
    if isinstance(node, NotOp):
        return {"t": t, "operand": _enc(node.operand)}
    if isinstance(node, Cast):
        return {"t": t, "to": node.to.value, "operand": _enc(node.operand)}
    if isinstance(node, Load):
        return {"t": t, "array": node.array, "index": _enc(node.index),
                "dtype": node.elem_dtype.value}
    if isinstance(node, Assign):
        return {"t": t, "var": node.var, "expr": _enc(node.expr)}
    if isinstance(node, Store):
        return {"t": t, "array": node.array, "index": _enc(node.index),
                "value": _enc(node.value)}
    if isinstance(node, AtomicAdd):
        return {"t": t, "array": node.array, "index": _enc(node.index),
                "value": _enc(node.value)}
    if isinstance(node, For):
        return {"t": t, "var": node.var, "lower": _enc(node.lower),
                "upper": _enc(node.upper),
                "body": [_enc(s) for s in node.body],
                "step": node.step, "parallel": node.parallel}
    if isinstance(node, If):
        return {"t": t, "cond": _enc(node.cond),
                "then": [_enc(s) for s in node.then_body],
                "else": [_enc(s) for s in node.else_body],
                "prob": node.prob}
    if isinstance(node, Sync):
        return {"t": t}
    raise TypeError(f"cannot serialize {t}")


def _dec(d):
    t = d["t"]
    if t == "IntConst":
        return IntConst(int(d["value"]), DType(d["dtype"]))
    if t == "FloatConst":
        return FloatConst(float(d["value"]), DType(d["dtype"]))
    if t == "VarRef":
        return VarRef(d["name"], DType(d["dtype"]))
    if t == "BinOp":
        return BinOp(d["op"], _dec(d["left"]), _dec(d["right"]))
    if t == "Cmp":
        return Cmp(d["op"], _dec(d["left"]), _dec(d["right"]))
    if t == "BoolOp":
        return BoolOp(d["op"], _dec(d["left"]), _dec(d["right"]))
    if t == "UnaryOp":
        return UnaryOp(d["op"], _dec(d["operand"]))
    if t == "NotOp":
        return NotOp(_dec(d["operand"]))
    if t == "Cast":
        return Cast(DType(d["to"]), _dec(d["operand"]))
    if t == "Load":
        return Load(d["array"], _dec(d["index"]), DType(d["dtype"]))
    if t == "Assign":
        return Assign(d["var"], _dec(d["expr"]))
    if t == "Store":
        return Store(d["array"], _dec(d["index"]), _dec(d["value"]))
    if t == "AtomicAdd":
        return AtomicAdd(d["array"], _dec(d["index"]), _dec(d["value"]))
    if t == "For":
        return For(d["var"], _dec(d["lower"]), _dec(d["upper"]),
                   tuple(_dec(s) for s in d["body"]),
                   step=d["step"], parallel=d["parallel"])
    if t == "If":
        return If(_dec(d["cond"]),
                  tuple(_dec(s) for s in d["then"]),
                  tuple(_dec(s) for s in d["else"]), prob=d["prob"])
    if t == "Sync":
        return Sync()
    raise TypeError(f"cannot deserialize {t!r}")


def program_to_json(program: FuzzProgram, note: str = "") -> dict:
    spec = program.spec
    inputs = {}
    for name, v in program.inputs.items():
        if isinstance(v, np.ndarray):
            inputs[name] = {
                "dtype": str(v.dtype),
                "data": [float(x) if v.dtype.kind == "f" else int(x)
                         for x in v],
            }
        else:
            inputs[name] = int(v)
    return {
        "schema": SCHEMA,
        "seed": program.seed,
        "note": note or program.note,
        "tc": program.tc,
        "bc": program.bc,
        "output_names": list(program.output_names),
        "spec": {
            "name": spec.name,
            "params": [
                {"kind": "array", "name": p.name,
                 "dtype": p.elem_dtype.value}
                if isinstance(p, ArrayParam)
                else {"kind": "scalar", "name": p.name,
                      "dtype": p.dtype.value}
                for p in spec.params
            ],
            "smem": [[name, count, dt.value]
                     for name, count, dt in spec.smem_arrays],
            "body": [_enc(s) for s in spec.body],
        },
        "inputs": inputs,
    }


def program_from_json(doc: dict) -> FuzzProgram:
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unknown fuzz schema {doc.get('schema')!r}")
    sd = doc["spec"]
    params = tuple(
        ArrayParam(p["name"], DType(p["dtype"])) if p["kind"] == "array"
        else ScalarParam(p["name"], DType(p["dtype"]))
        for p in sd["params"]
    )
    spec = KernelSpec(
        name=sd["name"],
        params=params,
        body=tuple(_dec(s) for s in sd["body"]),
        smem_arrays=tuple(
            (name, int(count), DType(dt)) for name, count, dt in sd["smem"]
        ),
    )
    inputs = {}
    for name, v in doc["inputs"].items():
        if isinstance(v, dict):
            inputs[name] = np.array(v["data"], dtype=np.dtype(v["dtype"]))
        else:
            inputs[name] = int(v)
    return FuzzProgram(
        spec=spec, tc=int(doc["tc"]), bc=int(doc["bc"]), inputs=inputs,
        output_names=tuple(doc["output_names"]), seed=doc.get("seed"),
        note=doc.get("note", ""),
    )


def dump_program(program: FuzzProgram, path: str, note: str = "") -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(program_to_json(program, note=note), fh, indent=1)
        fh.write("\n")


def load_program(path: str) -> FuzzProgram:
    with open(path, encoding="utf-8") as fh:
        return program_from_json(json.load(fh))
