"""Delta-debugging shrinker for failing fuzz programs.

Greedy fixpoint reduction over the kernel AST: repeatedly apply the
first structural simplification that keeps the program failing *with
the same mismatch kind* (guarding against "slippage" onto an unrelated
defect), until no candidate applies or the check budget runs out.

Candidate moves, roughly largest-first:

- delete a statement (at any nesting depth);
- splice an ``If`` into its then- or else-arm, or drop the else arm;
- splice a sequential ``For`` into its body with the loop variable
  substituted by the lower bound (one unrolled iteration);
- replace an ``Assign``'s expression by a same-dtype subexpression or
  by a unit constant;
- drop the block count to 1 (non-cooperative programs only: barrier
  programs need ``N = tc*bc*rounds`` to stay lockstep).

A final pass prunes arrays the shrunk kernel no longer references.
Every accepted move re-runs the full three-way differential check, so a
shrunk reproducer is failing by construction.
"""

from __future__ import annotations

from dataclasses import replace

from repro.codegen.ast_nodes import (
    ArrayParam,
    Assign,
    AtomicAdd,
    BinOp,
    BoolOp,
    Cast,
    Cmp,
    Expr,
    FloatConst,
    For,
    If,
    IntConst,
    KernelSpec,
    Load,
    NotOp,
    Store,
    UnaryOp,
    stmt_exprs,
    substitute_stmt,
    walk_exprs,
    walk_stmts,
)
from repro.fuzz.generator import FuzzProgram

DEFAULT_MAX_CHECKS = 250


def _expr_children(e: Expr):
    if isinstance(e, (BinOp, Cmp, BoolOp)):
        return [e.left, e.right]
    if isinstance(e, (UnaryOp, NotOp, Cast)):
        return [e.operand]
    if isinstance(e, Load):
        return [e.index]
    return []


def _expr_shrinks(e: Expr):
    for child in _expr_children(e):
        if child.dtype == e.dtype:
            yield child
    if not isinstance(e, (IntConst, FloatConst)):
        yield (FloatConst(1.0) if e.dtype.is_float else IntConst(1))


def _stmt_candidates(stmts: tuple):
    """Yield simplified versions of one statement tuple (recursive)."""
    for idx, s in enumerate(stmts):
        head, tail = stmts[:idx], stmts[idx + 1:]
        yield head + tail  # delete
        if isinstance(s, If):
            yield head + s.then_body + tail
            if s.else_body:
                yield head + s.else_body + tail
                yield head + (replace(s, else_body=()),) + tail
        if isinstance(s, For) and not s.parallel:
            sub = tuple(
                substitute_stmt(b, {s.var: s.lower}) for b in s.body
            )
            yield head + sub + tail
        if isinstance(s, Assign):
            for repl in _expr_shrinks(s.expr):
                yield head + (replace(s, expr=repl),) + tail
        if isinstance(s, If):
            for nb in _stmt_candidates(s.then_body):
                yield head + (replace(s, then_body=nb),) + tail
            for nb in _stmt_candidates(s.else_body):
                yield head + (replace(s, else_body=nb),) + tail
        if isinstance(s, For):
            for nb in _stmt_candidates(s.body):
                yield head + (replace(s, body=nb),) + tail


def _with_body(program: FuzzProgram, body: tuple) -> FuzzProgram | None:
    ploop = program.spec.body[0]
    try:
        spec = KernelSpec(
            name=program.spec.name,
            params=program.spec.params,
            body=(replace(ploop, body=body),),
            smem_arrays=program.spec.smem_arrays,
        )
    except (ValueError, TypeError):
        return None
    return replace(program, spec=spec)


def _is_cooperative(program: FuzzProgram) -> bool:
    return bool(program.spec.smem_arrays)


def _candidates(program: FuzzProgram):
    body = program.spec.body[0].body
    for nb in _stmt_candidates(body):
        cand = _with_body(program, nb)
        if cand is not None:
            yield cand
    if program.bc > 1 and not _is_cooperative(program):
        yield replace(program, bc=1)


def _prune_unused_arrays(program: FuzzProgram) -> FuzzProgram | None:
    used = set()
    for s in walk_stmts(program.spec.body):
        if isinstance(s, (Store, AtomicAdd)):
            used.add(s.array)
        for e in stmt_exprs(s):
            for node in walk_exprs(e):
                if isinstance(node, Load):
                    used.add(node.array)
    params = tuple(
        p for p in program.spec.params
        if not isinstance(p, ArrayParam) or p.name in used
    )
    if len(params) == len(program.spec.params):
        return None
    try:
        spec = KernelSpec(
            name=program.spec.name, params=params,
            body=program.spec.body,
            smem_arrays=program.spec.smem_arrays,
        )
    except (ValueError, TypeError):
        return None
    keep = {p.name for p in params}
    inputs = {k: v for k, v in program.inputs.items() if k in keep}
    outputs = tuple(n for n in program.output_names if n in keep)
    return replace(program, spec=spec, inputs=inputs,
                   output_names=outputs)


def _size(program: FuzzProgram) -> int:
    n = 0
    for s in walk_stmts(program.spec.body):
        n += 1
        for e in stmt_exprs(s):
            n += sum(1 for _ in walk_exprs(e))
    return n


def shrink_program(
    program: FuzzProgram,
    check,
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> FuzzProgram:
    """Minimize ``program`` under ``check`` (``check(p) -> Mismatch|None``).

    Returns the smallest failing program found; if the input does not
    fail at all, it is returned unchanged.
    """
    baseline = check(program)
    if baseline is None:
        return program
    kind = baseline.kind
    checks = 1

    def still_fails(cand) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        mm = check(cand)
        return mm is not None and mm.kind == kind

    current = program
    progress = True
    while progress and checks < max_checks:
        progress = False
        for cand in _candidates(current):
            if _size(cand) >= _size(current) and cand.bc >= current.bc:
                continue
            if still_fails(cand):
                current = cand
                progress = True
                break

    pruned = _prune_unused_arrays(current)
    if pruned is not None and still_fails(pruned):
        current = pruned
    return current
