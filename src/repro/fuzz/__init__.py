"""Differential fuzzing of the simulation stack.

``repro.fuzz`` closes the loop the hand-written corpus cannot: instead
of fifteen curated kernels, it draws unbounded random programs from the
DSL fragment where bit-exact agreement is provable
(:mod:`repro.fuzz.generator`), executes each three ways -- independent
NumPy reference, scalar per-warp emulator, vectorized grid-level
emulator (:mod:`repro.fuzz.differential`) -- and demands bitwise
identity of output memory plus full counter/divergence equality between
the emulator paths.  Failures are minimized by delta debugging
(:mod:`repro.fuzz.shrink`) and dumped as self-contained JSON
reproducers (:mod:`repro.fuzz.serialize`) that replay as permanent
regression tests from ``tests/fuzz_corpus/``.
"""

from repro.fuzz.differential import (
    BUDGET_ENV,
    COUNTER_FIELDS,
    DEFAULT_BUDGET,
    CampaignResult,
    Mismatch,
    check_program,
    fuzz_budget,
    run_fuzz_campaign,
)
from repro.fuzz.generator import ACC_BINS, FuzzProgram, generate_program
from repro.fuzz.reference import ReferenceError, reference_run
from repro.fuzz.serialize import (
    dump_program,
    load_program,
    program_from_json,
    program_to_json,
)
from repro.fuzz.shrink import shrink_program

__all__ = [
    "ACC_BINS",
    "BUDGET_ENV",
    "COUNTER_FIELDS",
    "DEFAULT_BUDGET",
    "CampaignResult",
    "FuzzProgram",
    "Mismatch",
    "ReferenceError",
    "check_program",
    "dump_program",
    "fuzz_budget",
    "generate_program",
    "load_program",
    "program_from_json",
    "program_to_json",
    "reference_run",
    "run_fuzz_campaign",
    "shrink_program",
]
