"""Worklist dataflow solving over the kernel CFG.

The checkers in :mod:`repro.analyze.checkers` and the value-range
analysis in :mod:`repro.analyze.values` all need the same plumbing: a
fixed traversal order over :class:`repro.ptx.cfg.CFG` basic blocks, a
worklist iteration to a fixed point, and block-level transfer/join
plumbing.  This module provides that plus the three classical analyses
built directly on it:

- :class:`ReachingDefinitions` -- which definition sites can reach each
  program point (with a synthetic "undefined" site for registers never
  written on some path; the verifier's write-before-read check is a
  query over this),
- :class:`Liveness` -- backward live-register sets,
- :class:`GuardedDefinitions` -- a path-sensitive definedness analysis
  that understands predicated definitions: a register written under
  ``@%p`` and read back under the same ``@%p`` is defined on every path
  that reaches the read *with the guard true*, which the linear check
  cannot see.

States are plain dicts keyed by register name; a block's transfer
function folds its instructions in (forward) or reverse (backward)
order.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

from repro.ptx.cfg import CFG, ENTRY, EXIT, BasicBlock
from repro.ptx.instruction import Imm, Instruction, Reg
from repro.ptx.isa import CmpOp, Opcode

#: Synthetic definition site meaning "never written on this path".
UNDEF = -1

#: Guard-set value meaning "defined on every path, unconditionally".
ALWAYS = object()

_CMP = {
    CmpOp.LT: operator.lt,
    CmpOp.LE: operator.le,
    CmpOp.GT: operator.gt,
    CmpOp.GE: operator.ge,
    CmpOp.EQ: operator.eq,
    CmpOp.NE: operator.ne,
}


def _const_value(operand, consts: dict):
    if isinstance(operand, Imm):
        return operand.value
    if isinstance(operand, Reg):
        return consts.get(operand.name)
    return None


def infeasible_edges(cfg: CFG) -> frozenset[tuple[str, str]]:
    """Conditional-branch edges provably never taken.

    Block-local constant folding (``mov`` of an immediate, ``setp`` over
    known constants) decides some branch predicates outright -- most
    importantly the zero-trip bypass the loop lowering emits in front of
    a counted loop with a constant positive trip count
    (``mov %r, 0; setp.ge %p, %r, 5; @%p bra $exit``).  Pruning those
    edges keeps the may-analyses from dragging "uninitialized" facts
    along paths that cannot execute.
    """
    dead: set[tuple[str, str]] = set()
    for name, block in cfg.blocks.items():
        term = block.terminator
        if term is None or not term.is_conditional_branch:
            continue
        if term.branch_target is None:
            continue
        consts: dict[str, object] = {}
        for ins in block.instructions:
            if ins.dst is None:
                continue
            val = None
            if ins.pred is None:
                if ins.opcode is Opcode.MOV and len(ins.srcs) == 1:
                    val = _const_value(ins.srcs[0], consts)
                elif ins.opcode is Opcode.SETP:
                    a = _const_value(ins.srcs[0], consts)
                    b = _const_value(ins.srcs[1], consts)
                    if a is not None and b is not None:
                        val = _CMP[ins.cmp](a, b)
            if val is None:
                consts.pop(ins.dst.name, None)
            else:
                consts[ins.dst.name] = val
        pval = consts.get(term.pred.name)
        if not isinstance(pval, bool):
            continue
        taken = pval != term.pred_negated
        target = cfg.resolve_label(term.branch_target)
        succs = cfg.successors(name)
        if len(set(succs)) < 2:  # branch to the fall-through block
            continue
        for succ in succs:
            if (succ == target) != taken:
                dead.add((name, succ))
    return frozenset(dead)


def linear_blocks(cfg: CFG) -> list[tuple[str, BasicBlock, int]]:
    """Blocks in original body order with their global start index.

    ``cfg.blocks`` preserves insertion order, which is the order blocks
    appear in the flat instruction stream, so a running sum of block
    lengths recovers each instruction's index into
    ``kernel.instructions()`` -- the index the verifier puts in its
    error messages.
    """
    out = []
    start = 0
    for name, block in cfg.blocks.items():
        out.append((name, block, start))
        start += len(block.instructions)
    return out


def reverse_postorder(cfg: CFG) -> list[str]:
    """Real blocks in reverse post-order from the entry block."""
    seen: set[str] = set()
    order: list[str] = []

    def visit(name: str) -> None:
        seen.add(name)
        for succ in cfg.successors(name):
            if succ not in seen:
                visit(succ)
        order.append(name)

    visit(cfg.entry_block)
    # blocks unreachable from entry (possible in hand-written IR) still
    # get states so queries are total
    for name in cfg.blocks:
        if name not in seen:
            visit(name)
    order.reverse()
    return order


class Dataflow:
    """Base class for a block-granular dataflow analysis.

    Subclasses define :attr:`FORWARD`, :meth:`boundary` (state at the
    kernel entry for forward / kernel exit for backward),
    :meth:`join` and :meth:`transfer_block`.  ``solve`` runs a worklist
    to a fixed point and stores per-block input/output states on
    ``self.block_in`` / ``self.block_out`` (in the direction of flow:
    for a backward analysis ``block_in`` is the state at the block's
    *end*).
    """

    FORWARD = True

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.block_in: dict[str, dict] = {}
        self.block_out: dict[str, dict] = {}
        # facts never flow along branches that provably cannot be taken
        self._dead_edges = infeasible_edges(cfg)

    # -- to be provided by subclasses ---------------------------------

    def boundary(self) -> dict:
        raise NotImplementedError

    def join(self, states: list[dict]) -> dict:
        raise NotImplementedError

    def transfer_block(self, block: BasicBlock, state: dict) -> dict:
        raise NotImplementedError

    # -- solver -------------------------------------------------------

    def _edges_in(self, name: str) -> list[str]:
        if self.FORWARD:
            return [
                p for p in self.cfg.predecessors(name)
                if (p, name) not in self._dead_edges
            ]
        return [
            s for s in self.cfg.successors(name)
            if (name, s) not in self._dead_edges
        ]

    def _edges_out(self, name: str) -> list[str]:
        if self.FORWARD:
            return [
                s for s in self.cfg.successors(name)
                if (name, s) not in self._dead_edges
            ]
        return [
            p for p in self.cfg.predecessors(name)
            if (p, name) not in self._dead_edges
        ]

    def _is_boundary(self, name: str) -> bool:
        if self.FORWARD:
            return name == self.cfg.entry_block
        return EXIT in self.cfg.graph.successors(name)

    def solve(self) -> "Dataflow":
        order = reverse_postorder(self.cfg)
        if not self.FORWARD:
            order = list(reversed(order))
        pos = {name: i for i, name in enumerate(order)}
        work = list(order)
        in_work = set(order)
        while work:
            work.sort(key=pos.get, reverse=True)
            name = work.pop()
            in_work.discard(name)
            incoming = [
                self.block_out[p]
                for p in self._edges_in(name)
                if p in self.block_out
            ]
            if self._is_boundary(name):
                incoming = incoming + [self.boundary()]
            if not incoming:
                incoming = [self.boundary()]
            state = self.join(incoming)
            self.block_in[name] = state
            out = self.transfer_block(self.cfg.blocks[name], state)
            if self.block_out.get(name) != out:
                self.block_out[name] = out
                for succ in self._edges_out(name):
                    if succ not in in_work:
                        work.append(succ)
                        in_work.add(succ)
        return self


class ReachingDefinitions(Dataflow):
    """Forward may-analysis: per register, the set of definition sites
    (global instruction indices) that can reach a point.

    Every register starts with the synthetic :data:`UNDEF` site at the
    kernel entry; a definition strongly kills previous sites (predicated
    definitions count as full definitions, matching the verifier's
    linear semantics).  A register can be *read uninitialized* at a
    point iff :data:`UNDEF` is in its reaching set there.
    """

    def __init__(self, cfg: CFG):
        super().__init__(cfg)
        self.start_of: dict[str, int] = {
            name: start for name, _, start in linear_blocks(cfg)
        }

    def boundary(self) -> dict:
        return {}

    def join(self, states: list[dict]) -> dict:
        keys = set()
        for s in states:
            keys.update(s)
        out = {}
        for k in keys:
            merged: frozenset[int] = frozenset()
            for s in states:
                merged |= s.get(k, frozenset({UNDEF}))
            out[k] = merged
        return out

    def transfer_block(self, block: BasicBlock, state: dict) -> dict:
        state = dict(state)
        idx = self.start_of[block.name]
        for ins in block.instructions:
            if ins.dst is not None:
                state[ins.dst.name] = frozenset({idx})
            idx += 1
        return state

    def reaching_at(self, block: str, offset: int) -> dict:
        """Reaching-definition sets just before instruction ``offset``
        of ``block``."""
        state = dict(self.block_in[block])
        idx = self.start_of[block]
        for ins in self.cfg.blocks[block].instructions[:offset]:
            if ins.dst is not None:
                state[ins.dst.name] = frozenset({idx})
            idx += 1
        return state


def first_undefined_read(
    cfg: CFG,
) -> tuple[int, Instruction, str] | None:
    """First (in linear body order) register read that the reaching-
    definitions analysis cannot prove written, as
    ``(global_index, instruction, register_name)``.

    A register is flagged iff some *feasible* path from the entry
    reaches the read without a write: the solver prunes edges that
    :func:`infeasible_edges` can refute, so a register first defined
    inside a counted loop with a constant positive trip count (whose
    zero-trip bypass can never execute) is not a false positive.
    """
    rd = ReachingDefinitions(cfg).solve()
    for name, block, start in linear_blocks(cfg):
        state = dict(rd.block_in.get(name, {}))
        for off, ins in enumerate(block.instructions):
            for r in ins.registers_read():
                sites = state.get(r.name, frozenset({UNDEF}))
                if UNDEF in sites:
                    return start + off, ins, r.name
            if ins.dst is not None:
                state[ins.dst.name] = frozenset({start + off})
    return None


class Liveness(Dataflow):
    """Backward liveness: the set of register names whose current value
    may still be read.  ``block_in[b]`` is the live set at the *end* of
    ``b`` (the analysis runs backward)."""

    FORWARD = False

    def boundary(self) -> dict:
        return {"live": frozenset()}

    def join(self, states: list[dict]) -> dict:
        live: frozenset[str] = frozenset()
        for s in states:
            live |= s["live"]
        return {"live": live}

    def transfer_block(self, block: BasicBlock, state: dict) -> dict:
        live = set(state["live"])
        for ins in reversed(block.instructions):
            if ins.dst is not None:
                live.discard(ins.dst.name)
            for r in ins.registers_read():
                live.add(r.name)
        return {"live": frozenset(live)}

    def live_out(self, block: str) -> frozenset[str]:
        return self.block_in[block]["live"]

    def live_in(self, block: str) -> frozenset[str]:
        return self.block_out[block]["live"]


@dataclass(frozen=True)
class Guard:
    """A predicate condition ``(%p == (not negated))`` under which a
    definition happened."""

    pred: str
    negated: bool


class GuardedDefinitions(Dataflow):
    """Path-sensitive definedness.

    Per register the state is either :data:`ALWAYS` (written
    unconditionally on every path) or a frozenset of :class:`Guard`
    covers: the register is known written whenever any of these guard
    conditions holds.  An empty set means "may be completely
    uninitialized".

    Rules:

    - an unpredicated definition sets :data:`ALWAYS`;
    - a definition under ``@%p`` adds ``Guard(p, False)`` (under
      ``@!%p``, ``Guard(p, True)``); if both polarities of the same
      predicate are present the register is covered on all paths and
      promotes to :data:`ALWAYS`;
    - redefining a predicate register invalidates every guard that
      mentions it (the old condition no longer describes the paths);
    - the join intersects guarantees (:data:`ALWAYS` is the universal
      element).

    A read under ``@%p`` is satisfied by :data:`ALWAYS` or by a cover
    containing the read's own guard; an unpredicated read needs
    :data:`ALWAYS`.
    """

    def boundary(self) -> dict:
        return {}

    def join(self, states: list[dict]) -> dict:
        keys = set(states[0])
        for s in states[1:]:
            keys &= set(s)
        out = {}
        for k in keys:
            vals = [s[k] for s in states]
            if all(v is ALWAYS for v in vals):
                out[k] = ALWAYS
                continue
            covers = [
                v if v is not ALWAYS else None for v in vals
            ]
            merged: frozenset[Guard] | None = None
            for c in covers:
                if c is None:  # ALWAYS: universal, keeps the other side
                    continue
                merged = c if merged is None else (merged & c)
            out[k] = merged if merged else frozenset()
        return out

    def transfer_block(self, block: BasicBlock, state: dict) -> dict:
        state = dict(state)
        for ins in block.instructions:
            self._transfer(ins, state)
        return state

    @staticmethod
    def _transfer(ins: Instruction, state: dict) -> None:
        if ins.dst is None:
            return
        name = ins.dst.name
        # the predicate's truth set changed: drop guards that mention it
        for reg, cover in list(state.items()):
            if cover is ALWAYS:
                continue
            kept = frozenset(g for g in cover if g.pred != name)
            if kept != cover:
                state[reg] = kept
        if ins.pred is None:
            state[name] = ALWAYS
            return
        guard = Guard(ins.pred.name, ins.pred_negated)
        prev = state.get(name, frozenset())
        if prev is ALWAYS:
            return
        cover = prev | {guard}
        if Guard(guard.pred, not guard.negated) in cover:
            state[name] = ALWAYS
        else:
            state[name] = cover

    @staticmethod
    def read_ok(ins: Instruction, reg: str, state: dict) -> bool:
        cover = state.get(reg, frozenset())
        if cover is ALWAYS:
            return True
        if ins.pred is not None:
            return Guard(ins.pred.name, ins.pred_negated) in cover
        return False
