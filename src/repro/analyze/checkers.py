"""Static kernel sanitizers built on the dataflow/value analyses.

Four checkers, each reporting :class:`Diagnostic` records pinned to a
``(block, instruction index)`` location:

``smem-race``
    Shared-memory conflicts between *barrier intervals*.  The blocks
    are cut into segments at every ``bar.sync``; two accesses can be in
    the same phase iff one segment reaches the other through a
    barrier-free path.  Same-phase conflicting accesses (at least one
    store, not both atomic) must then be proven disjoint either
    numerically (guard-refined byte intervals) or symbolically
    (tid-relative affine addresses with a stride covering the access
    width: ``addr(t) - addr(u) = c*(t-u)``, ``|c| >= nbytes``).

``divergent-barrier``
    A ``bar.sync`` whose execution depends on a non-block-uniform
    predicate: either directly guarded, or located in the *influence
    region* of a divergent conditional branch (the blocks between the
    branch and its immediate post-dominator).  This is the static
    mirror of the emulator's "divergent bar.sync" runtime error.

``uninit-read``
    Path-sensitive use-before-def via
    :class:`~repro.analyze.dataflow.GuardedDefinitions`: a read is
    clean if the register is written on all paths, or written under the
    same guard predicate the read carries.

``out-of-bounds``
    Address ranges of global/shared accesses vs. declared array extents
    and static shared-memory size, using the interval facet of the
    value analysis under the lint launch context.  Data-dependent
    addresses (histogram bins, CSR column gathers, compaction cursors)
    have unbounded intervals and are skipped -- this checker only
    reports *provable* violations.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.analyze.dataflow import GuardedDefinitions, linear_blocks
from repro.analyze.values import (
    AbsVal,
    Interval,
    LaunchContext,
    ValueAnalysis,
    ivl_meet,
)
from repro.ptx.cfg import CFG, build_cfg
from repro.ptx.isa import MemSpace, Opcode
from repro.ptx.module import KernelIR

CHECKS = ("smem-race", "divergent-barrier", "uninit-read", "out-of-bounds")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``check`` at instruction ``index`` of ``block``."""

    check: str
    kernel: str
    block: str
    index: int
    message: str

    def __str__(self):
        return (
            f"{self.kernel}/{self.block}[{self.index}]: "
            f"{self.check}: {self.message}"
        )


@dataclass
class KernelReport:
    """All diagnostics for one kernel, plus the analyses that produced
    them (kept for tests and the experiment renderer)."""

    kernel: KernelIR
    cfg: CFG
    values: ValueAnalysis
    diagnostics: list[Diagnostic]


def analyze_kernel(
    kernel: KernelIR, ctx: LaunchContext
) -> KernelReport:
    """Run the value analysis and all four checkers on one kernel."""
    cfg = build_cfg(kernel)
    va = ValueAnalysis(cfg, kernel, ctx).run()
    diags: list[Diagnostic] = []
    diags += check_uninitialized_reads(kernel, cfg)
    diags += check_divergent_barriers(kernel, cfg, va)
    diags += check_smem_races(kernel, cfg, va, ctx)
    diags += check_out_of_bounds(kernel, cfg, va, ctx)
    diags.sort(key=lambda d: (d.block, d.index, d.check))
    return KernelReport(kernel, cfg, va, diags)


# -- uninitialized reads ----------------------------------------------


def check_uninitialized_reads(
    kernel: KernelIR, cfg: CFG
) -> list[Diagnostic]:
    gd = GuardedDefinitions(cfg).solve()
    out = []
    for name, block, _start in linear_blocks(cfg):
        state = dict(gd.block_in.get(name, {}))
        for off, ins in enumerate(block.instructions):
            for r in ins.registers_read():
                if not gd.read_ok(ins, r.name, state):
                    out.append(Diagnostic(
                        "uninit-read", kernel.name, name, off,
                        f"register {r.name} may be read before "
                        f"definition on some path",
                    ))
            gd._transfer(ins, state)
    return out


# -- divergent barriers -----------------------------------------------


def _influence_region(cfg: CFG, branch_block: str) -> set[str]:
    """Blocks control-dependent on the branch: reachable from a
    successor without passing through the reconvergence point."""
    stop = cfg.reconvergence_point(branch_block)
    region: set[str] = set()
    stack = [s for s in cfg.successors(branch_block) if s != stop]
    while stack:
        node = stack.pop()
        if node in region:
            continue
        region.add(node)
        stack.extend(
            s for s in cfg.successors(node)
            if s != stop and s not in region
        )
    return region


def check_divergent_barriers(
    kernel: KernelIR, cfg: CFG, va: ValueAnalysis
) -> list[Diagnostic]:
    divergent_region: dict[str, str] = {}
    for name in cfg.conditional_branch_blocks():
        if not va.reachable(name) or va.branch_uniform(name):
            continue
        for member in _influence_region(cfg, name):
            divergent_region.setdefault(member, name)
    out = []
    for name in cfg.blocks:
        if not va.reachable(name):
            continue
        for off, ins, state in va.walk(name):
            if ins.opcode is not Opcode.BAR:
                continue
            if ins.pred is not None:
                pav = va.av_of(ins.pred, state)
                if not pav.uniform:
                    out.append(Diagnostic(
                        "divergent-barrier", kernel.name, name, off,
                        f"bar.sync guarded by non-uniform predicate "
                        f"{ins.pred.name}",
                    ))
                    continue
            if name in divergent_region:
                out.append(Diagnostic(
                    "divergent-barrier", kernel.name, name, off,
                    "bar.sync under divergent control flow (branch in "
                    f"block {divergent_region[name]} is not provably "
                    "block-uniform)",
                ))
    return out


# -- shared-memory races ----------------------------------------------


@dataclass
class _SmemAccess:
    block: str
    index: int
    seg: tuple[str, int]
    op: Opcode
    nbytes: int
    av: AbsVal


def _collect_smem_accesses(
    cfg: CFG, va: ValueAnalysis
) -> list[_SmemAccess]:
    out = []
    for name in cfg.blocks:
        if not va.reachable(name):
            continue
        bars = 0
        for off, ins, state in va.walk(name):
            if ins.opcode is Opcode.BAR:
                bars += 1
                continue
            if (
                ins.opcode not in (Opcode.LD, Opcode.ST, Opcode.RED)
                or ins.space is not MemSpace.SHARED
            ):
                continue
            if ins.pred is not None:
                refined = va.guard_refined_state(
                    state, ins.pred, ins.pred_negated
                )
                if refined is None:
                    continue  # guard statically false: never executes
                state = refined
            av = va.av_of(ins.srcs[0], state)
            out.append(_SmemAccess(
                name, off, (name, bars), ins.opcode,
                ins.dtype.nbytes, av,
            ))
    return out


def _segment_graph(cfg: CFG, va: ValueAnalysis) -> nx.DiGraph:
    """Barrier-interval graph: blocks split at each ``bar.sync``; CFG
    edges connect a block's *last* segment to successors' segment 0.
    Consecutive segments of one block are deliberately unconnected --
    the barrier between them is a phase boundary."""
    g = nx.DiGraph()
    last_seg: dict[str, int] = {}
    for name, block in cfg.blocks.items():
        bars = sum(
            1 for i in block.instructions if i.opcode is Opcode.BAR
        )
        for s in range(bars + 1):
            g.add_node((name, s))
        last_seg[name] = bars
    for name in cfg.blocks:
        if not va.reachable(name):
            continue
        for succ in cfg.successors(name):
            g.add_edge((name, last_seg[name]), (succ, 0))
    return g


def _stable_phi_syms(cfg: CFG, va: ValueAnalysis, seg: nx.DiGraph):
    """Phi symbols whose value is equal for two same-phase accesses
    inside their loop: the loop (and every enclosing loop) has a
    barrier on every cyclic path, so a barrier-free path can never
    cross an iteration boundary."""
    loops = cfg.natural_loops()

    def barrier_cut(loop) -> bool:
        nodes = [n for n in seg.nodes if n[0] in loop.body]
        return nx.is_directed_acyclic_graph(seg.subgraph(nodes))

    cut = {loop.header: barrier_cut(loop) for loop in loops}
    stable: dict[str, frozenset[str]] = {}
    for loop in loops:
        ok = cut[loop.header] and all(
            cut[outer.header]
            for outer in loops
            if outer.body > loop.body
        )
        if ok:
            for sym, info in va.syms.items():
                if info.header == loop.header:
                    stable[sym] = loop.body
    return stable


def _ranges_disjoint(a: _SmemAccess, b: _SmemAccess) -> bool:
    ia, ib = a.av.interval, b.av.interval
    if None not in (ia.hi, ib.lo) and ia.hi + a.nbytes - 1 < ib.lo:
        return True
    if None not in (ib.hi, ia.lo) and ib.hi + b.nbytes - 1 < ia.lo:
        return True
    return False


def _affine_safe(
    a: _SmemAccess, b: _SmemAccess, va: ValueAnalysis, stable
) -> bool:
    """Prove no two *distinct* threads overlap: both addresses reduce
    to ``c*tid + shared-part`` with the same ``c`` and shared parts
    cancelling, and the stride ``c`` clears the access widths for every
    feasible thread distance."""
    fa, fb = a.av.affine, b.av.affine
    if fa is None or fb is None:
        return False
    syms = {s for s, _ in fa.coeffs} | {s for s, _ in fb.coeffs}
    c_tid = None
    for s in syms:
        ca, cb = fa.coeff(s), fb.coeff(s)
        if s == "tid":
            if ca != cb:
                return False
            c_tid = ca
            continue
        if s == "laneid" or s.startswith("ptr:"):
            return False
        info = va.syms[s]
        shared = info.uniform or (
            s in stable and a.block in stable[s] and b.block in stable[s]
        )
        if not shared or ca != cb:
            return False
    c = c_tid or 0
    d = fa.const - fb.const
    if c == 0:
        # uniform address: every thread of the block hits it
        return False
    # overlap needs c*k + d in (-b.nbytes, a.nbytes) for a thread
    # distance k != 0; check the k nearest the crossing
    tc = va.ctx.tc
    k0 = round(-d / c)
    for k in (k0 - 1, k0, k0 + 1):
        if k == 0 or abs(k) > tc - 1:
            continue
        diff = c * k + d
        if -b.nbytes < diff < a.nbytes:
            return False
    return True


def check_smem_races(
    kernel: KernelIR, cfg: CFG, va: ValueAnalysis, ctx: LaunchContext
) -> list[Diagnostic]:
    if ctx.tc <= 1:
        return []
    accesses = _collect_smem_accesses(cfg, va)
    if not any(a.op in (Opcode.ST, Opcode.RED) for a in accesses):
        return []
    seg = _segment_graph(cfg, va)
    reach = {
        n: nx.descendants(seg, n) | {n} for n in seg.nodes
    }
    stable = _stable_phi_syms(cfg, va, seg)
    flagged: dict[tuple[str, int], Diagnostic] = {}
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if a.op is Opcode.LD and b.op is Opcode.LD:
                continue
            if a.op is Opcode.RED and b.op is Opcode.RED:
                continue
            if not (b.seg in reach[a.seg] or a.seg in reach[b.seg]):
                continue  # a barrier always separates them
            if _ranges_disjoint(a, b):
                continue
            if _affine_safe(a, b, va, stable):
                continue
            key = (a.block, a.index)
            if key not in flagged:
                flagged[key] = Diagnostic(
                    "smem-race", kernel.name, a.block, a.index,
                    f"{a.op.value}.shared here may conflict with "
                    f"{b.op.value}.shared at {b.block}[{b.index}] in "
                    "the same barrier interval (addresses not provably "
                    "disjoint across threads)",
                )
    return list(flagged.values())


# -- out-of-bounds ----------------------------------------------------


def _bounded_offset(av: AbsVal) -> Interval | None:
    """The access's byte-offset interval, if finite."""
    ivl = av.interval
    if ivl.lo is None or ivl.hi is None:
        return None
    return ivl


def check_out_of_bounds(
    kernel: KernelIR, cfg: CFG, va: ValueAnalysis, ctx: LaunchContext
) -> list[Diagnostic]:
    out = []
    smem_bytes = kernel.static_smem_bytes
    for name in cfg.blocks:
        if not va.reachable(name):
            continue
        for off, ins, state in va.walk(name):
            if ins.opcode not in (Opcode.LD, Opcode.ST, Opcode.RED):
                continue
            if ins.space not in (MemSpace.GLOBAL, MemSpace.SHARED):
                continue
            if ins.pred is not None:
                refined = va.guard_refined_state(
                    state, ins.pred, ins.pred_negated
                )
                if refined is None:
                    continue
                state = refined
            av = va.av_of(ins.srcs[0], state)
            ivl = _bounded_offset(av)
            if ivl is None:
                continue  # data-dependent address: not provable
            nbytes = ins.dtype.nbytes
            if ins.space is MemSpace.SHARED:
                array, extent = "shared memory", smem_bytes
            else:
                ptr_syms = [
                    s for s, c in (av.affine.coeffs if av.affine else ())
                    if s.startswith("ptr:")
                ]
                if len(ptr_syms) != 1 or av.affine.coeff(ptr_syms[0]) != 1:
                    continue  # cannot attribute the access to one array
                array = ptr_syms[0][4:]
                extent = ctx.extents.get(array)
            if extent is None:
                continue
            legal = Interval(0, extent - nbytes)
            if ivl_meet(ivl, legal) != ivl:
                out.append(Diagnostic(
                    "out-of-bounds", kernel.name, name, off,
                    f"{ins.opcode.value}.{ins.space.value} offset range "
                    f"[{ivl.lo}, {ivl.hi + nbytes - 1}] exceeds {array} "
                    f"extent {extent} bytes",
                ))
    return out


# -- lint drivers -----------------------------------------------------


def context_for_benchmark(bench, n: int | None = None) -> LaunchContext:
    """Launch context from a benchmark's smallest registered size: its
    emulation-safe launch, scalar parameter bindings, and input-array
    extents."""
    from repro.util.rng import rng_for

    n = bench.smallest_size if n is None else n
    tc, bc = bench.emu_launch(n)
    inputs = bench.make_inputs(n, rng_for("lint", bench.name, n))
    extents = {
        name: arr.nbytes
        for name, arr in inputs.items()
        if hasattr(arr, "nbytes")
    }
    params = dict(bench.param_env(n))
    for name, val in inputs.items():
        if isinstance(val, (int, float)) and name not in params:
            params[name] = val
    return LaunchContext(tc=tc, bc=bc, params=params, extents=extents)


def lint_benchmark(bench, n: int | None = None) -> list[KernelReport]:
    """Compile a registered benchmark at its smallest size and analyze
    every kernel under its emulation launch context."""
    from repro.arch import K20
    from repro.codegen.compiler import CompileOptions, compile_module

    ctx = context_for_benchmark(bench, n)
    module = compile_module(
        bench.name, list(bench.specs), CompileOptions(gpu=K20)
    )
    return [analyze_kernel(ck.ir, ctx) for ck in module]


def unexpected_diagnostics(bench, reports) -> list[Diagnostic]:
    """Diagnostics not covered by the benchmark's
    ``expected_diagnostics`` annotation (kernel-name, check) pairs."""
    expected = set(getattr(bench, "expected_diagnostics", ()) or ())
    return [
        d
        for rep in reports
        for d in rep.diagnostics
        if (rep.kernel.name, d.check) not in expected
        and (d.check not in expected)
    ]
