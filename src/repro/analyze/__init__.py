"""Static analysis over kernel IR: dataflow, value ranges, sanitizers.

Public surface:

- :func:`repro.analyze.checkers.analyze_kernel` /
  :func:`~repro.analyze.checkers.lint_benchmark` -- run all checkers;
- :class:`repro.analyze.dataflow.ReachingDefinitions` /
  :class:`~repro.analyze.dataflow.Liveness` /
  :class:`~repro.analyze.dataflow.GuardedDefinitions` -- classical
  analyses on the worklist solver;
- :class:`repro.analyze.values.ValueAnalysis` -- affine/interval/
  uniformity facts the checkers (and the timing model's divergence
  terms) consume.
"""

from repro.analyze.checkers import (
    CHECKS,
    Diagnostic,
    KernelReport,
    analyze_kernel,
    context_for_benchmark,
    lint_benchmark,
    unexpected_diagnostics,
)
from repro.analyze.dataflow import (
    GuardedDefinitions,
    Liveness,
    ReachingDefinitions,
    first_undefined_read,
    linear_blocks,
)
from repro.analyze.values import (
    AbsVal,
    Affine,
    Interval,
    LaunchContext,
    ValueAnalysis,
)

__all__ = [
    "CHECKS",
    "Diagnostic",
    "KernelReport",
    "analyze_kernel",
    "context_for_benchmark",
    "lint_benchmark",
    "unexpected_diagnostics",
    "GuardedDefinitions",
    "Liveness",
    "ReachingDefinitions",
    "first_undefined_read",
    "linear_blocks",
    "AbsVal",
    "Affine",
    "Interval",
    "LaunchContext",
    "ValueAnalysis",
]
