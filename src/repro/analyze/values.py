"""Forward value analysis: affine forms, intervals, uniformity.

This is the symbolic core the checkers build on.  Per program point and
register it tracks an :class:`AbsVal` with three cooperating facets:

- an *affine form* over launch symbols (``tid``, ``ctaid``, loop
  ``phi`` variables, pointer bases) -- exact linear expressions like
  ``4*tid + 512`` survive the codegen's div/mul/sub modulo idiom and
  register reuse;
- a *numeric interval*, refined along branch edges (the taken edge of
  ``setp.lt %p, %r, N; @%p bra L`` knows ``%r < N``), which is what the
  out-of-bounds checker consumes;
- a *uniformity bit*: whether all active threads of a block hold the
  same value (the divergent-barrier test).  Grid-stride guards like
  ``gtid + k*stride < N`` are proven block-uniform by the *window
  lemma*: if the condition is ``tid + R < 0`` with ``R`` congruent to
  ``0 mod ntid`` in every component, the crossing aligns with block
  boundaries, so a whole block agrees.

Loop-carried registers get ``phi`` symbols introduced at natural-loop
headers when the latch increment is a compile-time constant; the
symbol records the gcd of observed increments (``multiple_of``), which
both the window lemma and the modulo normalizer need.  Everything else
(data-dependent loads, non-affine arithmetic) degrades gracefully to
interval/uniformity facts only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction

from repro.ptx.cfg import CFG
from repro.ptx.instruction import Imm, MemRef, ParamRef, Reg, SReg
from repro.ptx.isa import CmpOp, DType, MemSpace, Opcode, SRegKind
from repro.ptx.module import KernelIR

# -- intervals --------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """Integer interval; ``None`` bounds are unbounded."""

    lo: int | None = None
    hi: int | None = None

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def contains(self, other: "Interval") -> bool:
        if other.is_empty:
            return True
        lo_ok = self.lo is None or (
            other.lo is not None and other.lo >= self.lo
        )
        hi_ok = self.hi is None or (
            other.hi is not None and other.hi <= self.hi
        )
        return lo_ok and hi_ok


TOP_IVL = Interval()
EMPTY_IVL = Interval(0, -1)


def _add(a: int | None, b: int | None) -> int | None:
    return None if a is None or b is None else a + b


def ivl_add(a: Interval, b: Interval) -> Interval:
    return Interval(_add(a.lo, b.lo), _add(a.hi, b.hi))


def ivl_neg(a: Interval) -> Interval:
    return Interval(
        None if a.hi is None else -a.hi, None if a.lo is None else -a.lo
    )


def ivl_sub(a: Interval, b: Interval) -> Interval:
    return ivl_add(a, ivl_neg(b))


def ivl_scale(a: Interval, k: int) -> Interval:
    if k == 0:
        return Interval(0, 0)
    lo = None if a.lo is None else a.lo * k
    hi = None if a.hi is None else a.hi * k
    return Interval(lo, hi) if k > 0 else Interval(hi, lo)


def ivl_mul(a: Interval, b: Interval) -> Interval:
    if None in (a.lo, a.hi, b.lo, b.hi):
        return TOP_IVL
    prods = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return Interval(min(prods), max(prods))


def ivl_join(a: Interval, b: Interval) -> Interval:
    if a.is_empty:
        return b
    if b.is_empty:
        return a
    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return Interval(lo, hi)


def ivl_meet(a: Interval, b: Interval) -> Interval:
    lo = b.lo if a.lo is None else (a.lo if b.lo is None else max(a.lo, b.lo))
    hi = b.hi if a.hi is None else (a.hi if b.hi is None else min(a.hi, b.hi))
    return Interval(lo, hi)


# -- affine forms -----------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """``sum(coeffs[s] * s) + const`` over analysis symbols."""

    coeffs: tuple[tuple[str, int], ...]
    const: int = 0

    @staticmethod
    def make(coeffs: dict[str, int], const: int) -> "Affine":
        items = tuple(sorted((s, c) for s, c in coeffs.items() if c))
        return Affine(items, const)

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def coeff(self, sym: str) -> int:
        return dict(self.coeffs).get(sym, 0)


def aff_const(v: int) -> Affine:
    return Affine((), v)


def aff_sym(sym: str) -> Affine:
    return Affine(((sym, 1),), 0)


def aff_add(a: Affine | None, b: Affine | None) -> Affine | None:
    if a is None or b is None:
        return None
    coeffs = dict(a.coeffs)
    for s, c in b.coeffs:
        coeffs[s] = coeffs.get(s, 0) + c
    return Affine.make(coeffs, a.const + b.const)


def aff_scale(a: Affine | None, k: int) -> Affine | None:
    if a is None:
        return None
    return Affine.make({s: c * k for s, c in a.coeffs}, a.const * k)


def aff_sub(a: Affine | None, b: Affine | None) -> Affine | None:
    return aff_add(a, aff_scale(b, -1))


# -- symbols and abstract values --------------------------------------


@dataclass
class SymInfo:
    """Range / uniformity / stride facts about one analysis symbol."""

    interval: Interval
    uniform: bool
    multiple_of: int = 1
    header: str | None = None  # set for loop phi symbols


@dataclass(frozen=True)
class PCmp:
    """An elementary predicate: ``lhs cmp rhs`` over snapshot values."""

    lhs: "AbsVal"
    rhs: "AbsVal"
    cmp: CmpOp


@dataclass(frozen=True)
class PNot:
    a: object


@dataclass(frozen=True)
class PAnd:
    a: object
    b: object


@dataclass(frozen=True)
class POr:
    a: object
    b: object


_NEG_CMP = {
    CmpOp.LT: CmpOp.GE, CmpOp.GE: CmpOp.LT,
    CmpOp.LE: CmpOp.GT, CmpOp.GT: CmpOp.LE,
    CmpOp.EQ: CmpOp.NE, CmpOp.NE: CmpOp.EQ,
}


def flatten_pred(pv, negated: bool) -> list[PCmp]:
    """The conjunction of elementary comparisons implied by a predicate
    tree being ``True`` (or ``False`` when ``negated``).  Disjunctive
    directions contribute nothing (empty list)."""
    if isinstance(pv, PCmp):
        if negated:
            return [PCmp(pv.lhs, pv.rhs, _NEG_CMP[pv.cmp])]
        return [pv]
    if isinstance(pv, PNot):
        return flatten_pred(pv.a, not negated)
    if isinstance(pv, PAnd):
        if negated:
            return []
        return flatten_pred(pv.a, False) + flatten_pred(pv.b, False)
    if isinstance(pv, POr):
        if not negated:
            return []
        return flatten_pred(pv.a, True) + flatten_pred(pv.b, True)
    return []


@dataclass(frozen=True)
class AbsVal:
    """Abstract value of one register at one point."""

    affine: Affine | None = None
    interval: Interval = TOP_IVL
    uniform: bool = False
    origin: tuple | None = None
    pred: object | None = None  # predicate tree for DType.PRED regs


TOP = AbsVal()


def av_const(v: int) -> AbsVal:
    return AbsVal(aff_const(v), Interval(v, v), True)


def av_join(a: AbsVal, b: AbsVal) -> AbsVal:
    return AbsVal(
        affine=a.affine if a.affine == b.affine else None,
        interval=ivl_join(a.interval, b.interval),
        uniform=a.uniform and b.uniform,
        origin=a.origin if a.origin == b.origin else None,
        pred=a.pred if a.pred == b.pred else None,
    )


# -- launch context ---------------------------------------------------


@dataclass
class LaunchContext:
    """Concrete launch facts the analysis is allowed to assume: thread/
    block counts, scalar parameter values, and array extents in bytes.
    Verdicts are relative to this context (the lint entry points build
    it from a benchmark's smallest registered size and its
    emulation-safe launch)."""

    tc: int
    bc: int
    params: dict[str, int | float] = field(default_factory=dict)
    extents: dict[str, int] = field(default_factory=dict)


# -- the analysis -----------------------------------------------------

_CMP_BOUND = {
    CmpOp.LT: Interval(None, -1),
    CmpOp.LE: Interval(None, 0),
    CmpOp.GT: Interval(1, None),
    CmpOp.GE: Interval(0, None),
    CmpOp.EQ: Interval(0, 0),
}

_WIDEN_VISITS = 3


class ValueAnalysis:
    """Flow-sensitive fixpoint over one kernel's CFG.

    After :meth:`run`, ``block_in[b]`` maps register name -> AbsVal at
    the entry of every reachable block (``None`` for unreachable
    blocks), with branch-edge refinements already folded in.  Checkers
    replay a block's instructions via :meth:`walk` to get the state at
    each instruction.
    """

    def __init__(self, cfg: CFG, kernel: KernelIR, ctx: LaunchContext):
        self.cfg = cfg
        self.kernel = kernel
        self.ctx = ctx
        self.syms: dict[str, SymInfo] = {
            "tid": SymInfo(Interval(0, ctx.tc - 1), uniform=False),
            "ctaid": SymInfo(Interval(0, ctx.bc - 1), uniform=True),
            "laneid": SymInfo(
                Interval(0, min(ctx.tc, 32) - 1), uniform=False
            ),
        }
        self.block_in: dict[str, dict[str, AbsVal] | None] = {}
        self._visits: dict[str, int] = {}
        self._header_latches: dict[str, set[str]] = {}
        for loop in cfg.natural_loops():
            self._header_latches.setdefault(loop.header, set()).update(
                p for p in cfg.predecessors(loop.header) if p in loop.body
            )

    # -- public API ---------------------------------------------------

    def run(self) -> "ValueAnalysis":
        cfg = self.cfg
        order = {n: i for i, n in enumerate(_rpo(cfg))}
        block_out: dict[str, dict[str, AbsVal]] = {}
        work = [cfg.entry_block]
        queued = {cfg.entry_block}
        while work:
            work.sort(key=lambda n: order.get(n, 0), reverse=True)
            name = work.pop()
            queued.discard(name)
            states = []  # (predecessor, refined out-state) pairs
            if name == cfg.entry_block:
                states.append((None, {}))
            for p in cfg.predecessors(name):
                if p not in block_out:
                    continue
                refined = self._refine_edge(block_out[p], p, name)
                if refined is not None:
                    states.append((p, refined))
            if not states:
                continue
            self._visits[name] = self._visits.get(name, 0) + 1
            joined = self._join(name, states)
            prev = self.block_in.get(name)
            if prev is not None and self._visits[name] > _WIDEN_VISITS:
                joined = self._widen(prev, joined)
            if prev == joined and name in block_out:
                continue
            self.block_in[name] = joined
            out = dict(joined)
            for ins in cfg.blocks[name].instructions:
                self.transfer(ins, out)
            if block_out.get(name) != out:
                block_out[name] = out
                for s in cfg.successors(name):
                    if s not in queued:
                        work.append(s)
                        queued.add(s)
        self._narrow(block_out)
        for name in cfg.blocks:
            self.block_in.setdefault(name, None)
        return self

    def _narrow(self, block_out) -> None:
        """Two widening-free RPO sweeps from the converged post-
        fixpoint.  Widening at loop headers discards interval bounds
        that the branch-edge refinements re-establish on every visit
        (a grid-stride index is widened to ``[0, +inf)`` even though
        both incoming edges clip it below N); recomputing without
        widening recovers them, and starting from a post-fixpoint
        keeps every state sound."""
        cfg = self.cfg
        order = [n for n in _rpo(cfg) if n in self.block_in]
        for _sweep in range(2):
            for name in order:
                states = []
                if name == cfg.entry_block:
                    states.append((None, {}))
                for p in cfg.predecessors(name):
                    if block_out.get(p) is None:
                        continue
                    refined = self._refine_edge(block_out[p], p, name)
                    if refined is not None:
                        states.append((p, refined))
                if not states:
                    self.block_in[name] = None
                    block_out[name] = None
                    continue
                joined = self._join(name, states)
                self.block_in[name] = joined
                out = dict(joined)
                for ins in cfg.blocks[name].instructions:
                    self.transfer(ins, out)
                block_out[name] = out

    def walk(self, name: str):
        """Yield ``(offset, ins, state_before)`` for a reachable block.
        The state dict is reused across yields; read it immediately."""
        state = dict(self.block_in[name] or {})
        for off, ins in enumerate(self.cfg.blocks[name].instructions):
            yield off, ins, state
            self.transfer(ins, state)

    def reachable(self, name: str) -> bool:
        return self.block_in.get(name) is not None

    def branch_uniform(self, name: str) -> bool:
        """Whether the conditional branch terminating ``name`` is proven
        block-uniform."""
        blk = self.cfg.blocks[name]
        term = blk.terminator
        if term is None or not term.is_conditional_branch:
            return True
        for _off, ins, state in self.walk(name):
            if ins is term:
                return self.av_of(term.pred, state).uniform
        return False

    def av_of(self, op, state: dict[str, AbsVal]) -> AbsVal:
        if isinstance(op, Reg):
            return state.get(op.name, TOP)
        if isinstance(op, Imm):
            if op.dtype.is_float:
                return AbsVal(uniform=True)
            return av_const(int(op.value))
        if isinstance(op, SReg):
            return self._sreg(op.kind)
        if isinstance(op, MemRef):
            base = state.get(op.base.name, TOP)
            return AbsVal(
                affine=aff_add(base.affine, aff_const(op.offset)),
                interval=ivl_add(base.interval, Interval(op.offset, op.offset)),
                uniform=base.uniform,
            )
        return TOP

    def affine_uniform(self, aff: Affine | None) -> bool:
        if aff is None:
            return False
        return all(self.syms[s].uniform for s, _c in aff.coeffs)

    def affine_interval(self, aff: Affine) -> Interval:
        out = Interval(aff.const, aff.const)
        for s, c in aff.coeffs:
            out = ivl_add(out, ivl_scale(self.syms[s].interval, c))
        return out

    # -- joins, phis, widening ----------------------------------------

    def _join(self, name, states):
        """Join incoming ``(pred, state)`` pairs at ``name``.  At a
        loop header the back-edge states are folded against the
        current header state to introduce/advance phi symbols."""
        latches = self._header_latches.get(name, set())
        if not latches:
            return self._plain_join([s for _p, s in states])
        entry, latch = [], []
        for p, s in states:
            (latch if p in latches else entry).append(s)
        if not entry:
            return self._plain_join([s for _p, s in states])
        e = self._plain_join(entry)
        if not latch:
            return e
        lt = self._plain_join(latch)
        prev = self.block_in.get(name) or e
        out = {}
        for reg in set(e) | set(lt):
            ev, lv = e.get(reg, TOP), lt.get(reg, TOP)
            pv = prev.get(reg, ev)
            out[reg] = self._phi_join(name, reg, ev, lv, pv)
        return out

    def _phi_join(self, header, reg, ev, lv, pv) -> AbsVal:
        sym = f"phi:{header}:{reg}"
        interval = ivl_join(ev.interval, lv.interval)
        uniform = ev.uniform and lv.uniform
        if ev.affine is None or lv.affine is None:
            if ev.affine == lv.affine:  # both None
                return av_join(ev, lv)
            return AbsVal(None, interval, uniform)
        base = pv.affine if pv is not None else None
        if base is not None and base.coeff(sym):
            delta = aff_sub(lv.affine, base)
            if delta is not None and delta.is_const:
                info = self.syms[sym]
                g = math.gcd(info.multiple_of, abs(delta.const))
                if delta.const and info.multiple_of != g:
                    info.multiple_of = g
                info.uniform = info.uniform and uniform
                return AbsVal(base, interval, self.affine_uniform(base))
            return AbsVal(None, interval, uniform)
        delta = aff_sub(lv.affine, ev.affine)
        if delta is not None and delta.is_const:
            if delta.const == 0:
                return av_join(ev, lv)
            c = delta.const
            rng = Interval(0, None) if c > 0 else Interval(None, 0)
            self.syms[sym] = SymInfo(
                rng, uniform=uniform, multiple_of=abs(c), header=header
            )
            aff = aff_add(ev.affine, aff_sym(sym))
            return AbsVal(aff, interval, self.affine_uniform(aff))
        return AbsVal(None, interval, uniform)

    @staticmethod
    def _plain_join(states):
        if len(states) == 1:
            return dict(states[0])
        out = dict(states[0])
        for s in states[1:]:
            for reg in list(out):
                if reg in s:
                    out[reg] = av_join(out[reg], s[reg])
                else:
                    del out[reg]
        return out

    @staticmethod
    def _widen(prev, new):
        out = {}
        for reg, av in new.items():
            pv = prev.get(reg)
            if pv is None or pv.interval == av.interval:
                out[reg] = av
                continue
            lo = av.interval.lo if av.interval.lo == pv.interval.lo else None
            hi = av.interval.hi if av.interval.hi == pv.interval.hi else None
            out[reg] = replace(av, interval=Interval(lo, hi))
        return out

    # -- edge refinement ----------------------------------------------

    def guard_refined_state(self, state, pred_reg, negated):
        """A copy of ``state`` refined by a ``@%p`` / ``@!%p`` guard
        being true -- the state seen by the threads that actually
        execute a predicated instruction.  ``None`` if no thread can."""
        state = dict(state)
        pv = state.get(pred_reg.name, TOP).pred
        if pv is None:
            return state
        for c in flatten_pred(pv, negated):
            state = self._apply_constraint(state, c)
            if state is None:
                return None
        return state

    def _refine_edge(self, out_state, src, dst):
        state = dict(out_state)
        term = self.cfg.blocks[src].terminator
        if term is None or not term.is_conditional_branch:
            return state
        taken = self.cfg.resolve_label(term.branch_target)
        succs = self.cfg.successors(src)
        fall = [s for s in succs if s != taken]
        if taken == dst and dst in fall:
            return state  # both edges land here: nothing to assert
        pv = self.av_of(term.pred, state).pred
        if pv is None:
            return state
        if dst == taken:
            negated = term.pred_negated
        else:
            negated = not term.pred_negated
        for c in flatten_pred(pv, negated):
            state = self._apply_constraint(state, c)
            if state is None:
                return None
        return state

    def _apply_constraint(self, state, c: PCmp):
        d_aff = aff_sub(c.lhs.affine, c.rhs.affine)
        d_base = ivl_sub(c.lhs.interval, c.rhs.interval)
        if c.cmp is CmpOp.NE:
            d_int = d_base
            if d_int.lo == 0:
                d_int = Interval(1, d_int.hi)
            if d_int.hi == 0:
                d_int = Interval(d_int.lo, -1)
        else:
            d_int = ivl_meet(d_base, _CMP_BOUND[c.cmp])
        if d_int.is_empty:
            return None
        if d_aff is not None and not d_aff.is_const:
            state = self._refine_by_affine(state, d_aff, d_int)
            if state is None:
                return None
        state = self._refine_div_origin(state, c, d_int)
        return state

    def _refine_by_affine(self, state, d_aff, d_int):
        """Clip every register whose affine form is ``alpha*d + const``
        to ``alpha*d_int + const``."""
        d_coeffs = dict(d_aff.coeffs)
        anchor, ac = d_aff.coeffs[0]
        for reg, av in list(state.items()):
            if av.affine is None or av.affine.is_const:
                continue
            alpha = Fraction(av.affine.coeff(anchor), ac)
            if alpha == 0:
                continue
            if dict(av.affine.coeffs) != {
                s: alpha * c for s, c in d_coeffs.items()
                if alpha * c != 0
            }:
                continue
            rest = av.affine.const - alpha * d_aff.const
            lo, hi = d_int.lo, d_int.hi
            if alpha < 0:
                lo, hi = hi, lo
            new = Interval(
                None if lo is None else math.ceil(alpha * lo + rest),
                None if hi is None else math.floor(alpha * hi + rest),
            )
            clipped = ivl_meet(av.interval, new)
            if clipped.is_empty:
                return None
            if clipped != av.interval:
                state[reg] = replace(av, interval=clipped)
        return state

    def _refine_div_origin(self, state, c: PCmp, d_int):
        """Push a bound on ``q = a div m`` back to the register still
        holding ``a``: ``q in [lo,hi]`` and ``a >= 0`` imply
        ``a in [lo*m, (hi+1)*m - 1]``."""
        for side, other, flip in ((c.lhs, c.rhs, False), (c.rhs, c.lhs, True)):
            org = side.origin
            if not (org and org[0] == "div"):
                continue
            if other.affine is None or not other.affine.is_const:
                continue
            oc = other.affine.const
            if flip:  # d = other - side  =>  side = other - d
                q_int = ivl_sub(Interval(oc, oc), d_int)
            else:  # d = side - other
                q_int = ivl_add(d_int, Interval(oc, oc))
            q_int = ivl_meet(q_int, Interval(0, None))
            _tag, a_snap, m, src = org
            av = state.get(src)
            if av is None or av.affine is None or a_snap.affine is None:
                continue
            if av.affine != a_snap.affine:
                continue  # the register moved on; snapshot is stale
            lo = None if q_int.lo is None else q_int.lo * m
            hi = None if q_int.hi is None else (q_int.hi + 1) * m - 1
            clipped = ivl_meet(av.interval, Interval(lo, hi))
            if clipped.is_empty:
                return None
            if clipped != av.interval:
                state[src] = replace(av, interval=clipped)
        return state

    # -- transfer -----------------------------------------------------

    def _sreg(self, kind: SRegKind) -> AbsVal:
        tc, bc = self.ctx.tc, self.ctx.bc
        if kind is SRegKind.TID_X:
            return AbsVal(aff_sym("tid"), Interval(0, tc - 1), False)
        if kind is SRegKind.NTID_X:
            return av_const(tc)
        if kind is SRegKind.CTAID_X:
            return AbsVal(aff_sym("ctaid"), Interval(0, bc - 1), True)
        if kind is SRegKind.NCTAID_X:
            return av_const(bc)
        if kind is SRegKind.LANEID:
            if tc <= 32:
                return AbsVal(aff_sym("tid"), Interval(0, tc - 1), False)
            return AbsVal(aff_sym("laneid"), Interval(0, 31), False)
        if kind in (SRegKind.TID_Y, SRegKind.CTAID_Y):
            return av_const(0)  # launches are 1-D
        if kind in (SRegKind.NTID_Y, SRegKind.NCTAID_Y):
            return av_const(1)
        return TOP

    def transfer(self, ins, state: dict[str, AbsVal]) -> None:
        if ins.dst is None:
            return
        av = self._compute(ins, state)
        if ins.pred is not None:
            pav = state.get(ins.pred.name, TOP)
            old = state.get(ins.dst.name, TOP)
            av = av_join(old, av)
            if not pav.uniform:
                av = replace(av, uniform=False)
        state[ins.dst.name] = av

    def _compute(self, ins, state: dict[str, AbsVal]) -> AbsVal:
        op = ins.opcode
        a = self.av_of(ins.srcs[0], state) if ins.srcs else TOP
        b = self.av_of(ins.srcs[1], state) if len(ins.srcs) > 1 else TOP

        if op is Opcode.MOV:
            return a
        if op is Opcode.CVT:
            return a
        if op is Opcode.LD:
            return self._load(ins, a)
        if op is Opcode.SETP:
            return self._setp(ins, a, b)
        if ins.dst.dtype.is_float or (
            ins.dtype is not None and ins.dtype.is_float
        ):
            return AbsVal(uniform=a.uniform and b.uniform)

        if op is Opcode.ADD:
            return AbsVal(
                aff_add(a.affine, b.affine),
                ivl_add(a.interval, b.interval),
                a.uniform and b.uniform,
            )
        if op is Opcode.SUB:
            return self._sub(a, b)
        if op in (Opcode.MUL, Opcode.MULWIDE):
            return self._mul(a, b, ins, state)
        if op is Opcode.MAD:
            prod = self._mul(a, b, ins, state)
            cval = self.av_of(ins.srcs[2], state)
            return AbsVal(
                aff_add(prod.affine, cval.affine),
                ivl_add(prod.interval, cval.interval),
                prod.uniform and cval.uniform,
            )
        if op is Opcode.DIV:
            return self._div(a, b, ins)
        if op is Opcode.SHL:
            if b.affine is not None and b.affine.is_const:
                return self._scaled(a, 2 ** b.affine.const)
            return AbsVal(uniform=a.uniform and b.uniform)
        if op is Opcode.SHR:
            if b.affine is not None and b.affine.is_const:
                return self._div(a, av_const(2 ** b.affine.const), ins)
            return AbsVal(uniform=a.uniform and b.uniform)
        if op is Opcode.NEG:
            return self._scaled(a, -1)
        if op is Opcode.ABS:
            nonneg = a.interval.lo is not None and a.interval.lo >= 0
            ivl = a.interval if nonneg else ivl_join(
                ivl_meet(a.interval, Interval(0, None)),
                ivl_neg(ivl_meet(a.interval, Interval(None, 0))),
            )
            return AbsVal(a.affine if nonneg else None, ivl, a.uniform)
        if op in (Opcode.MIN, Opcode.MAX):
            pick = min if op is Opcode.MIN else max
            lo = (
                None if None in (a.interval.lo, b.interval.lo)
                else pick(a.interval.lo, b.interval.lo)
            )
            hi = (
                None if None in (a.interval.hi, b.interval.hi)
                else pick(a.interval.hi, b.interval.hi)
            )
            return AbsVal(None, Interval(lo, hi), a.uniform and b.uniform)
        if op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT):
            return self._logic(op, ins, a, b)
        if op is Opcode.SELP:
            cond = self.av_of(ins.srcs[2], state)
            out = av_join(a, b)
            return replace(out, uniform=out.uniform and cond.uniform)
        return AbsVal(uniform=a.uniform and b.uniform)

    def _load(self, ins, addr: AbsVal) -> AbsVal:
        if ins.space is MemSpace.PARAM:
            ref = ins.srcs[0]
            name = ref.name if isinstance(ref, ParamRef) else None
            param = next(
                (p for p in self.kernel.params if p.name == name), None
            )
            if param is not None and param.is_pointer:
                return AbsVal(
                    aff_sym(f"ptr:{name}"), Interval(0, 0), True
                )
            val = self.ctx.params.get(name)
            if isinstance(val, int) and not ins.dtype.is_float:
                return av_const(val)
            return AbsVal(uniform=True)
        # data loads: value unknown; a load from a block-uniform address
        # yields a block-uniform value
        return AbsVal(uniform=addr.uniform)

    def _setp(self, ins, a: AbsVal, b: AbsVal) -> AbsVal:
        uniform = a.uniform and b.uniform
        if not uniform:
            uniform = self._window_uniform(
                aff_sub(a.affine, b.affine), ins.cmp
            )
        return AbsVal(
            interval=Interval(0, 1), uniform=uniform,
            pred=PCmp(a, b, ins.cmp),
        )

    def _window_uniform(self, d: Affine | None, cmp: CmpOp) -> bool:
        """Window lemma: ``tid + R  cmp  0`` with ``R`` block-uniform
        and congruent to 0 mod ntid crosses only at block boundaries,
        so every thread of a block agrees (strict comparisons only)."""
        if d is None or cmp not in (CmpOp.LT, CmpOp.GE):
            return False
        tc = self.ctx.tc
        if d.const % tc:
            return False
        for s, c in d.coeffs:
            if s == "tid":
                if c != 1:
                    return False
                continue
            info = self.syms[s]
            if not info.uniform:
                return False
            if (c * info.multiple_of) % tc:
                return False
        return d.coeff("tid") == 1

    def _sub(self, a: AbsVal, b: AbsVal) -> AbsVal:
        mod = self._try_mod(a, b)
        if mod is not None:
            return mod
        return AbsVal(
            aff_sub(a.affine, b.affine),
            ivl_sub(a.interval, b.interval),
            a.uniform and b.uniform,
        )

    def _try_mod(self, a: AbsVal, b: AbsVal) -> AbsVal | None:
        """Recognize ``a - (a div m)*m`` and normalize the remainder.

        The codegen lowers ``x % m`` to div/mul/sub; when the dividend
        is provably the same affine value and nonnegative, the result
        is ``a mod m``.  If the coefficient-reduced residual already
        fits in ``[0, m)`` it *is* the remainder (``gtid % ntid -> tid``
        under a launch whose grid stride is a multiple of ``ntid``);
        otherwise we keep the ``[0, m-1]`` interval and an opaque
        origin."""
        org = b.origin
        if not (org and org[0] == "divmul"):
            return None
        _tag, a_snap, m = org
        if a.affine is None or a.affine != a_snap.affine:
            return None
        if a.interval.lo is None or a.interval.lo < 0:
            return None
        coeffs = {}
        exact = True
        for s, c in a.affine.coeffs:
            info = self.syms[s]
            if info.header is not None or s.startswith("ptr:"):
                # strided loop symbol: drops iff every step is 0 mod m
                if (c * info.multiple_of) % m == 0:
                    continue
                exact = False
                coeffs[s] = c
            else:
                if c % m:
                    coeffs[s] = c % m
        residual = Affine.make(coeffs, a.affine.const % m)
        origin = ("mod", a_snap, m)
        if exact:
            r_ivl = self.affine_interval(residual)
            if Interval(0, m - 1).contains(r_ivl):
                return AbsVal(
                    residual, r_ivl,
                    self.affine_uniform(residual), origin,
                )
        return AbsVal(None, Interval(0, m - 1), a.uniform, origin)

    def _mul(self, a: AbsVal, b: AbsVal, ins, state) -> AbsVal:
        for x, y in ((a, b), (b, a)):
            if y.affine is not None and y.affine.is_const:
                k = y.affine.const
                out = self._scaled(x, k)
                if (
                    x.origin is not None
                    and x.origin[0] == "div"
                    and k == x.origin[2]
                ):
                    out = replace(
                        out, origin=("divmul", x.origin[1], k)
                    )
                return out
        return AbsVal(
            None, ivl_mul(a.interval, b.interval),
            a.uniform and b.uniform,
        )

    @staticmethod
    def _scaled(a: AbsVal, k: int) -> AbsVal:
        return AbsVal(
            aff_scale(a.affine, k), ivl_scale(a.interval, k), a.uniform
        )

    def _div(self, a: AbsVal, b: AbsVal, ins) -> AbsVal:
        if ins.dtype is not None and ins.dtype.is_float:
            return AbsVal(uniform=a.uniform and b.uniform)
        if b.affine is None or not b.affine.is_const or b.affine.const <= 0:
            return AbsVal(uniform=a.uniform and b.uniform)
        m = b.affine.const
        if a.affine is not None and a.affine.is_const:
            return av_const(int(a.affine.const / m))  # trunc division
        nonneg = a.interval.lo is not None and a.interval.lo >= 0
        if nonneg:
            lo = a.interval.lo // m
            hi = None if a.interval.hi is None else a.interval.hi // m
            ivl = Interval(lo, hi)
        else:
            ends = [
                int(v / m)
                for v in (a.interval.lo, a.interval.hi)
                if v is not None
            ]
            ivl = (
                Interval(min(ends), max(ends))
                if len(ends) == 2 else TOP_IVL
            )
        origin = None
        src = ins.srcs[0]
        if nonneg and isinstance(src, Reg):
            origin = ("div", a, m, src.name)
        return AbsVal(None, ivl, a.uniform, origin)

    def _logic(self, op, ins, a: AbsVal, b: AbsVal) -> AbsVal:
        if ins.dst.dtype is DType.PRED:
            pv = None
            if op is Opcode.AND and a.pred is not None and b.pred is not None:
                pv = PAnd(a.pred, b.pred)
            elif op is Opcode.OR and a.pred is not None and b.pred is not None:
                pv = POr(a.pred, b.pred)
            elif op is Opcode.XOR:
                pv = None
            elif op is Opcode.NOT and a.pred is not None:
                pv = PNot(a.pred)
            return AbsVal(
                interval=Interval(0, 1),
                uniform=a.uniform and (op is Opcode.NOT or b.uniform),
                pred=pv,
            )
        ivl = TOP_IVL
        if op is Opcode.AND:
            for m in (a, b):
                if (
                    m.affine is not None and m.affine.is_const
                    and m.affine.const >= 0
                ):
                    ivl = ivl_meet(ivl, Interval(0, m.affine.const))
        return AbsVal(
            None, ivl,
            a.uniform and (op is Opcode.NOT or b.uniform),
        )


def _rpo(cfg: CFG) -> list[str]:
    from repro.analyze.dataflow import reverse_postorder

    return reverse_postorder(cfg)
