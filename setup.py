"""Packaging for the ICPP'17 autotuning-reproduction codebase.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so ``pip install -e .``
works without the ``wheel`` package being present.
"""

from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).parent
_README = _HERE / "README.md"

setup(
    name="repro-icpp-lim2017",
    version="0.2.0",
    description=(
        "Reproduction of Lim, Norris & Malony (ICPP'17): autotuning GPU "
        "kernels with static analysis, on a simulated-GPU measurement "
        "stack with a parallel, cache-backed sweep engine"
    ),
    long_description=(
        _README.read_text() if _README.exists() else ""
    ),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: Software Development :: Compilers",
    ],
)
